//! Scheduled node-failure injection (§III-B's "simulated failure" runs),
//! extended with *spot preemptions*: failures the platform announces ahead
//! of time (cloud §IV-F), giving the runtime a warning window in which to
//! evacuate state instead of paying for a rollback.

use crate::SimTime;

/// How a scheduled failure manifests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FailureKind {
    /// The node dies with no warning (the classic injected crash).
    #[default]
    Crash,
    /// Spot-instance preemption: the platform announces at
    /// `time - warning` that the node will be reclaimed at `time`. A long
    /// enough warning lets the runtime drain the node proactively; a short
    /// one degrades to the ordinary crash/restart path.
    Preemption {
        /// Advance notice before the kill lands.
        warning: SimTime,
    },
}

/// One injected failure: the node containing `pe` dies at `time`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Failure {
    /// When the node dies.
    pub time: SimTime,
    /// A PE on the failing node (the runtime expands this to the node's
    /// full PE range using its node size).
    pub pe: usize,
    /// Crash or announced preemption.
    pub kind: FailureKind,
}

impl Failure {
    /// An unannounced crash at `time`.
    pub fn crash(time: SimTime, pe: usize) -> Self {
        Failure {
            time,
            pe,
            kind: FailureKind::Crash,
        }
    }

    /// A preemption landing at `time`, announced `warning` earlier.
    pub fn preemption(time: SimTime, pe: usize, warning: SimTime) -> Self {
        Failure {
            time,
            pe,
            kind: FailureKind::Preemption { warning },
        }
    }

    /// When the failure becomes visible to the runtime: the announcement
    /// time for preemptions (saturating at zero), the kill time for
    /// crashes.
    pub fn visible_at(&self) -> SimTime {
        match self.kind {
            FailureKind::Crash => self.time,
            FailureKind::Preemption { warning } => self.time.saturating_sub(warning),
        }
    }
}

/// The full failure schedule for a run.
#[derive(Debug, Clone, Default)]
pub struct FailurePlan {
    events: Vec<Failure>,
}

impl FailurePlan {
    /// No failures.
    pub fn none() -> Self {
        FailurePlan { events: Vec::new() }
    }

    /// Build from a list of failures; sorts by kill time (stable, so
    /// same-time entries keep their listed order).
    pub fn at(mut events: Vec<Failure>) -> Self {
        events.sort_by_key(|f| f.time);
        FailurePlan { events }
    }

    /// Add one crash at its sorted position (stable: a failure inserted
    /// at an already-occupied time lands after the existing ones).
    pub fn push(&mut self, time: SimTime, pe: usize) {
        self.push_failure(Failure::crash(time, pe));
    }

    /// Add one preemption (kill at `time`, announced `warning` earlier) at
    /// its sorted position, with the same stable tie-break as [`push`].
    ///
    /// [`push`]: FailurePlan::push
    pub fn push_preemption(&mut self, time: SimTime, pe: usize, warning: SimTime) {
        self.push_failure(Failure::preemption(time, pe, warning));
    }

    /// Add an arbitrary failure at its sorted position (stable).
    pub fn push_failure(&mut self, f: Failure) {
        let at = self.events.partition_point(|e| e.time <= f.time);
        self.events.insert(at, f);
    }

    /// Merge another plan into this one, keeping kill-time order (stable:
    /// on ties, this plan's failures come first).
    pub fn merge(&mut self, other: &FailurePlan) {
        let mut merged = Vec::with_capacity(self.events.len() + other.events.len());
        let (mut a, mut b) = (self.events.iter().peekable(), other.events.iter().peekable());
        loop {
            match (a.peek(), b.peek()) {
                (Some(x), Some(y)) => {
                    if x.time <= y.time {
                        merged.push(*a.next().unwrap());
                    } else {
                        merged.push(*b.next().unwrap());
                    }
                }
                (Some(_), None) => merged.extend(a.by_ref().copied()),
                (None, Some(_)) => merged.extend(b.by_ref().copied()),
                (None, None) => break,
            }
        }
        self.events = merged;
    }

    /// All scheduled failures in kill-time order.
    pub fn events(&self) -> &[Failure] {
        &self.events
    }

    /// True when no failures are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_sorts_by_time() {
        let p = FailurePlan::at(vec![
            Failure::crash(SimTime::from_secs(9), 1),
            Failure::crash(SimTime::from_secs(3), 2),
        ]);
        assert_eq!(p.events()[0].pe, 2);
        assert_eq!(p.events()[1].pe, 1);
    }

    #[test]
    fn push_keeps_order() {
        let mut p = FailurePlan::none();
        assert!(p.is_empty());
        p.push(SimTime::from_secs(5), 0);
        p.push(SimTime::from_secs(1), 7);
        assert_eq!(p.events()[0].pe, 7);
        assert!(!p.is_empty());
    }

    #[test]
    fn push_inserts_at_sorted_position_stably() {
        let mut p = FailurePlan::none();
        p.push(SimTime::from_secs(3), 0);
        p.push(SimTime::from_secs(1), 1);
        p.push(SimTime::from_secs(3), 2); // tie: lands after pe 0
        p.push(SimTime::from_secs(2), 3);
        let pes: Vec<usize> = p.events().iter().map(|f| f.pe).collect();
        assert_eq!(pes, vec![1, 3, 0, 2]);
        assert!(p.events().windows(2).all(|w| w[0].time <= w[1].time));
    }

    #[test]
    fn merge_interleaves_two_plans() {
        let mut a = FailurePlan::none();
        a.push(SimTime::from_secs(1), 10);
        a.push(SimTime::from_secs(4), 11);
        let mut b = FailurePlan::none();
        b.push(SimTime::from_secs(2), 20);
        b.push(SimTime::from_secs(4), 21); // tie with a's second: a first
        b.push(SimTime::from_secs(9), 22);
        a.merge(&b);
        let pes: Vec<usize> = a.events().iter().map(|f| f.pe).collect();
        assert_eq!(pes, vec![10, 20, 11, 21, 22]);
        let mut empty = FailurePlan::none();
        empty.merge(&FailurePlan::none());
        assert!(empty.is_empty());
    }

    #[test]
    fn preemptions_sort_by_kill_time_not_warning() {
        // A preemption with a long warning is *announced* before an earlier
        // crash, but the plan orders by when nodes actually die.
        let mut p = FailurePlan::none();
        p.push_preemption(SimTime::from_secs(10), 3, SimTime::from_secs(8));
        p.push(SimTime::from_secs(5), 1);
        assert_eq!(p.events()[0].pe, 1);
        assert_eq!(p.events()[1].pe, 3);
        assert_eq!(p.events()[1].visible_at(), SimTime::from_secs(2));
        assert_eq!(p.events()[0].visible_at(), SimTime::from_secs(5));
    }

    #[test]
    fn visible_at_saturates_at_zero() {
        let f = Failure::preemption(SimTime::from_secs(3), 0, SimTime::from_secs(30));
        assert_eq!(f.visible_at(), SimTime::ZERO);
    }
}
