//! Scheduled node-failure injection (§III-B's "simulated failure" runs).

use crate::SimTime;

/// One injected crash: the node containing `pe` fails at `time`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Failure {
    /// When the node dies.
    pub time: SimTime,
    /// A PE on the failing node (the runtime expands this to the node's
    /// full PE range using its node size).
    pub pe: usize,
}

/// The full failure schedule for a run.
#[derive(Debug, Clone, Default)]
pub struct FailurePlan {
    events: Vec<Failure>,
}

impl FailurePlan {
    /// No failures.
    pub fn none() -> Self {
        FailurePlan { events: Vec::new() }
    }

    /// Build from a list of (time, pe) pairs; sorts by time.
    pub fn at(mut events: Vec<Failure>) -> Self {
        events.sort_by_key(|f| f.time);
        FailurePlan { events }
    }

    /// Add one failure.
    pub fn push(&mut self, time: SimTime, pe: usize) {
        self.events.push(Failure { time, pe });
        self.events.sort_by_key(|f| f.time);
    }

    /// All scheduled failures in time order.
    pub fn events(&self) -> &[Failure] {
        &self.events
    }

    /// True when no failures are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_sorts_by_time() {
        let p = FailurePlan::at(vec![
            Failure {
                time: SimTime::from_secs(9),
                pe: 1,
            },
            Failure {
                time: SimTime::from_secs(3),
                pe: 2,
            },
        ]);
        assert_eq!(p.events()[0].pe, 2);
        assert_eq!(p.events()[1].pe, 1);
    }

    #[test]
    fn push_keeps_order() {
        let mut p = FailurePlan::none();
        assert!(p.is_empty());
        p.push(SimTime::from_secs(5), 0);
        p.push(SimTime::from_secs(1), 7);
        assert_eq!(p.events()[0].pe, 7);
        assert!(!p.is_empty());
    }
}
