//! Host-process memory counters, read from `/proc/self/status`.
//!
//! The scale benchmark (`scale_bench`) proves that streaming observability
//! holds peak memory bounded as simulated PE counts grow into the
//! 128 K–1 M range; these helpers are how it measures that. `VmHWM` is the
//! kernel's high-water mark for resident set size — monotonic over the
//! process lifetime, which is why `scale_bench` runs each measurement
//! point in a fresh subprocess.
//!
//! On platforms without procfs both functions return `None`; callers
//! should degrade to reporting the metric as unavailable rather than fail.

/// Peak (high-water-mark) resident set size of this process in bytes
/// (`VmHWM`), or `None` when procfs is unavailable.
pub fn peak_rss_bytes() -> Option<u64> {
    proc_status_kib("VmHWM:").map(|kib| kib * 1024)
}

/// Current resident set size of this process in bytes (`VmRSS`), or `None`
/// when procfs is unavailable.
pub fn current_rss_bytes() -> Option<u64> {
    proc_status_kib("VmRSS:").map(|kib| kib * 1024)
}

/// Parse one `kB` field out of `/proc/self/status`.
fn proc_status_kib(field: &str) -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    parse_status_kib(&status, field)
}

fn parse_status_kib(status: &str, field: &str) -> Option<u64> {
    status
        .lines()
        .find(|l| l.starts_with(field))?
        .split_whitespace()
        .nth(1)?
        .parse()
        .ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_status_fields() {
        let status = "Name:\tcargo\nVmHWM:\t  123456 kB\nVmRSS:\t   7890 kB\n";
        assert_eq!(parse_status_kib(status, "VmHWM:"), Some(123_456));
        assert_eq!(parse_status_kib(status, "VmRSS:"), Some(7_890));
        assert_eq!(parse_status_kib(status, "VmPeak:"), None);
    }

    #[test]
    fn live_counters_are_sane_on_linux() {
        // On Linux procfs both counters exist and peak >= current > 0.
        if let (Some(peak), Some(cur)) = (peak_rss_bytes(), current_rss_bytes()) {
            assert!(cur > 0);
            assert!(peak >= cur / 2, "peak {peak} implausibly below current {cur}");
        }
    }
}
