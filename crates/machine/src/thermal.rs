//! Lumped-RC chip thermal model with a DVFS frequency ladder.
//!
//! Reproduces the physics behind §III-C / Fig. 4: chips heat with power
//! (∝ utilization · f³ plus static leakage), cool toward the machine-room
//! ambient set by the CRAC, and the runtime constrains temperature by
//! stepping frequencies down (which creates load imbalance the LB must fix).

/// Static configuration of the thermal model.
#[derive(Debug, Clone)]
pub struct ThermalConfig {
    /// Ambient (CRAC-controlled) air temperature, °C. The paper's Fig. 4
    /// sets the CRAC to 74 °F ≈ 23.3 °C.
    pub ambient_c: f64,
    /// Starting chip temperature, °C.
    pub initial_c: f64,
    /// Heating coefficient: °C per second per watt of dissipated power.
    pub heat_per_watt: f64,
    /// Cooling coefficient: fraction of the (T − ambient) gap shed per second.
    pub cool_rate: f64,
    /// Dynamic power at full utilization and nominal frequency, watts.
    pub dyn_power_w: f64,
    /// Static (leakage) power, watts.
    pub static_power_w: f64,
    /// Available frequencies as fractions of nominal, descending
    /// (e.g. `[1.0, 0.9, 0.8, 0.7, 0.6, 0.5]`).
    pub freq_ladder: Vec<f64>,
    /// Temperature threshold the DVFS controller enforces, °C (Fig. 4: 50).
    pub threshold_c: f64,
    /// Per-chip cooling variation (0.0 = identical chips; 0.3 = ±30 %):
    /// models rack position / airflow differences, the source of the
    /// heterogeneity the paper's frequency-aware LB corrects.
    pub cool_variation: f64,
}

impl ThermalConfig {
    /// The configuration used for the Fig. 4 reproduction.
    pub fn fig4() -> Self {
        ThermalConfig {
            ambient_c: 23.3,
            initial_c: 42.0,
            heat_per_watt: 0.018,
            cool_rate: 0.05,
            dyn_power_w: 80.0,
            static_power_w: 25.0,
            freq_ladder: vec![1.0, 0.93, 0.86, 0.79, 0.72, 0.65, 0.58, 0.51],
            threshold_c: 50.0,
            cool_variation: 0.30,
        }
    }

    /// Fig. 4 with 10× faster thermal dynamics (same steady-state
    /// temperatures) so demo-scale runs reach equilibrium in seconds.
    pub fn fig4_fast() -> Self {
        ThermalConfig {
            heat_per_watt: 0.18,
            cool_rate: 0.5,
            ..Self::fig4()
        }
    }
}

/// Dynamic state of one chip.
#[derive(Debug, Clone)]
pub struct ChipState {
    /// Current temperature, °C.
    pub temp_c: f64,
    /// Index into the frequency ladder.
    pub freq_idx: usize,
    /// Highest temperature ever observed, °C.
    pub max_temp_c: f64,
    /// Joules consumed so far (integral of power).
    pub energy_j: f64,
    /// This chip's cooling coefficient (config base × its variation).
    pub cool_rate: f64,
}

/// The thermal model for a whole machine: one [`ChipState`] per chip.
#[derive(Debug, Clone)]
pub struct ThermalModel {
    cfg: ThermalConfig,
    chips: Vec<ChipState>,
}

impl ThermalModel {
    /// Create the model with every chip at the initial temperature and
    /// nominal frequency. Per-chip cooling coefficients are deterministic
    /// functions of the chip index (±`cool_variation`).
    pub fn new(cfg: ThermalConfig, num_chips: usize) -> Self {
        let chips = (0..num_chips)
            .map(|i| {
                // splitmix-style hash → uniform in [-1, 1)
                let h = (i as u64)
                    .wrapping_mul(0x9E3779B97F4A7C15)
                    .rotate_left(31)
                    .wrapping_mul(0xBF58476D1CE4E5B9);
                let u = ((h >> 40) as f64 / (1u64 << 23) as f64) - 1.0;
                ChipState {
                    temp_c: cfg.initial_c,
                    freq_idx: 0,
                    max_temp_c: cfg.initial_c,
                    energy_j: 0.0,
                    cool_rate: cfg.cool_rate * (1.0 + cfg.cool_variation * u),
                }
            })
            .collect();
        ThermalModel { cfg, chips }
    }

    /// Static configuration.
    pub fn config(&self) -> &ThermalConfig {
        &self.cfg
    }

    /// Number of chips modeled.
    pub fn num_chips(&self) -> usize {
        self.chips.len()
    }

    /// Current frequency factor of a chip (1.0 = nominal).
    pub fn freq_factor(&self, chip: usize) -> f64 {
        self.cfg.freq_ladder[self.chips[chip].freq_idx]
    }

    /// Current temperature of a chip, °C.
    pub fn temp(&self, chip: usize) -> f64 {
        self.chips[chip].temp_c
    }

    /// Hottest temperature any chip has reached, °C.
    pub fn max_temp_observed(&self) -> f64 {
        self.chips
            .iter()
            .map(|c| c.max_temp_c)
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Total energy consumed across chips, joules.
    pub fn total_energy_j(&self) -> f64 {
        self.chips.iter().map(|c| c.energy_j).sum()
    }

    /// Advance chip `chip` by `dt_s` seconds at the given utilization
    /// (0..=1). Returns the new temperature.
    ///
    /// Power = dyn·util·f³ + static; dT = heat·P·dt − cool·(T − ambient)·dt.
    pub fn advance(&mut self, chip: usize, dt_s: f64, utilization: f64) -> f64 {
        let f = self.cfg.freq_ladder[self.chips[chip].freq_idx];
        let util = utilization.clamp(0.0, 1.0);
        let power = self.cfg.dyn_power_w * util * f * f * f + self.cfg.static_power_w;
        let c = &mut self.chips[chip];
        let dt = dt_s.max(0.0);
        c.energy_j += power * dt;
        let heating = self.cfg.heat_per_watt * power * dt;
        let cooling = c.cool_rate * (c.temp_c - self.cfg.ambient_c) * dt;
        c.temp_c += heating - cooling;
        if c.temp_c > c.max_temp_c {
            c.max_temp_c = c.temp_c;
        }
        c.temp_c
    }

    /// One DVFS control step for a chip: step the frequency down if over the
    /// threshold, up if comfortably below (hysteresis band of 2 °C), as the
    /// paper's RTS does periodically. Returns `true` if the frequency changed.
    pub fn dvfs_step(&mut self, chip: usize) -> bool {
        let c = &mut self.chips[chip];
        if c.temp_c > self.cfg.threshold_c {
            if c.freq_idx + 1 < self.cfg.freq_ladder.len() {
                c.freq_idx += 1;
                return true;
            }
        } else if c.temp_c < self.cfg.threshold_c - 2.0 && c.freq_idx > 0 {
            c.freq_idx -= 1;
            return true;
        }
        false
    }

    /// Force a chip to nominal frequency (the "Base" scheme never scales).
    pub fn reset_freq(&mut self, chip: usize) {
        self.chips[chip].freq_idx = 0;
    }

    /// Steady-state temperature at constant utilization and current
    /// frequency — handy for tests and for the MetaTemp predictor.
    pub fn steady_state_temp(&self, chip: usize, utilization: f64) -> f64 {
        let f = self.cfg.freq_ladder[self.chips[chip].freq_idx];
        let power = self.cfg.dyn_power_w * utilization.clamp(0.0, 1.0) * f * f * f
            + self.cfg.static_power_w;
        self.cfg.ambient_c + self.cfg.heat_per_watt * power / self.chips[chip].cool_rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(chips: usize) -> ThermalModel {
        ThermalModel::new(ThermalConfig::fig4(), chips)
    }

    #[test]
    fn busy_chip_heats_idle_chip_cools() {
        let mut m = model(2);
        let warm_start = 55.0;
        m.chips[0].temp_c = warm_start;
        m.chips[1].temp_c = warm_start;
        for _ in 0..60 {
            m.advance(0, 1.0, 1.0);
            m.advance(1, 1.0, 0.0);
        }
        assert!(m.temp(0) > warm_start, "busy chip should heat");
        assert!(m.temp(1) < warm_start, "idle chip should cool");
    }

    #[test]
    fn temperature_approaches_steady_state() {
        let mut m = model(1);
        let target = m.steady_state_temp(0, 1.0);
        for _ in 0..2000 {
            m.advance(0, 1.0, 1.0);
        }
        assert!((m.temp(0) - target).abs() < 0.5, "t={} ss={target}", m.temp(0));
    }

    #[test]
    fn dvfs_steps_down_when_hot_and_up_when_cool() {
        let mut m = model(1);
        m.chips[0].temp_c = 60.0;
        assert!(m.dvfs_step(0));
        assert!(m.freq_factor(0) < 1.0);
        m.chips[0].temp_c = 40.0;
        assert!(m.dvfs_step(0));
        assert_eq!(m.freq_factor(0), 1.0);
        // At nominal and cool: nothing to do.
        assert!(!m.dvfs_step(0));
    }

    #[test]
    fn dvfs_floors_at_ladder_bottom() {
        let mut m = model(1);
        m.chips[0].temp_c = 90.0;
        for _ in 0..50 {
            m.dvfs_step(0);
        }
        let min_f = *m.cfg.freq_ladder.last().unwrap();
        assert_eq!(m.freq_factor(0), min_f);
    }

    #[test]
    fn lower_frequency_lowers_steady_state() {
        let mut m = model(1);
        let hot = m.steady_state_temp(0, 1.0);
        m.chips[0].freq_idx = m.cfg.freq_ladder.len() - 1;
        let cool = m.steady_state_temp(0, 1.0);
        assert!(cool < hot);
    }

    #[test]
    fn energy_accumulates_with_utilization() {
        let mut busy = model(1);
        let mut idle = model(1);
        for _ in 0..10 {
            busy.advance(0, 1.0, 1.0);
            idle.advance(0, 1.0, 0.0);
        }
        assert!(busy.total_energy_j() > idle.total_energy_j());
        assert!(idle.total_energy_j() > 0.0, "leakage power still burns");
    }

    #[test]
    fn max_temp_tracks_peak() {
        let mut m = model(1);
        m.chips[0].temp_c = 70.0;
        m.advance(0, 0.001, 1.0);
        // cool down toward the leakage-only steady state
        for _ in 0..500 {
            m.advance(0, 1.0, 0.0);
        }
        let idle_ss = m.steady_state_temp(0, 0.0);
        assert!(m.temp(0) < idle_ss + 1.0, "t={} ss={idle_ss}", m.temp(0));
        assert!(m.max_temp_observed() >= 70.0);
    }
}
