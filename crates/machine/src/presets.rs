//! Machine presets approximating the supercomputers in the paper's
//! evaluation. Parameters are order-of-magnitude calibrations from public
//! specifications; EXPERIMENTS.md documents how each affects its figures.

use crate::thermal::ThermalConfig;
use crate::{DiskModel, FailurePlan, MachineConfig, NetworkParams, SpeedModel};

fn torus_dims_for(num_pes: usize, ndims: usize) -> Vec<usize> {
    crate::Torus::balanced(num_pes, ndims).dims().to_vec()
}

/// Vesta / Mira (IBM Blue Gene/Q): 16 cores/chip, 1.6 GHz A2 cores, 5-D
/// torus. Used for the AMR3D and LeanMD figures (Figs. 8–10).
pub fn bgq(num_pes: usize) -> MachineConfig {
    MachineConfig {
        name: format!("Vesta (IBM BG/Q) x{num_pes}"),
        num_pes,
        cores_per_chip: 16,
        pes_per_node: 16,
        // modest per-core throughput; BG/Q cores are slow but plentiful
        flops_per_sec: 0.8e9,
        network: NetworkParams::bgq_torus(torus_dims_for(num_pes, 5)),
        thermal: None,
        speed: SpeedModel::uniform(num_pes),
        failures: FailurePlan::none(),
        disk: DiskModel::default(),
    }
}

/// Blue Waters (Cray XE6, Gemini 3-D torus). Used for Barnes-Hut and
/// ChaNGa (Figs. 12–13).
pub fn xe6(num_pes: usize) -> MachineConfig {
    MachineConfig {
        name: format!("Blue Waters (Cray XE6) x{num_pes}"),
        num_pes,
        cores_per_chip: 16,
        pes_per_node: 32,
        flops_per_sec: 2.3e9,
        network: NetworkParams::gemini_torus(torus_dims_for(num_pes, 3)),
        thermal: None,
        speed: SpeedModel::uniform(num_pes),
        failures: FailurePlan::none(),
        disk: DiskModel::default(),
    }
}

/// Titan (Cray XK7, CPU partition only, Gemini network). Fig. 11.
pub fn xk7(num_pes: usize) -> MachineConfig {
    MachineConfig {
        name: format!("Titan XK7 (CPU only) x{num_pes}"),
        num_pes,
        cores_per_chip: 16,
        pes_per_node: 16,
        flops_per_sec: 2.2e9,
        network: NetworkParams::gemini_torus(torus_dims_for(num_pes, 3)),
        thermal: None,
        speed: SpeedModel::uniform(num_pes),
        failures: FailurePlan::none(),
        disk: DiskModel::default(),
    }
}

/// Jaguar (Cray XT5, SeaStar network — older, slower than Gemini). Fig. 11.
pub fn xt5(num_pes: usize) -> MachineConfig {
    MachineConfig {
        name: format!("Jaguar XT5 x{num_pes}"),
        num_pes,
        cores_per_chip: 12,
        pes_per_node: 12,
        flops_per_sec: 1.8e9,
        network: NetworkParams::seastar_torus(torus_dims_for(num_pes, 3)),
        thermal: None,
        speed: SpeedModel::uniform(num_pes),
        failures: FailurePlan::none(),
        disk: DiskModel::default(),
    }
}

/// Hopper (Cray XE6 at NERSC): the LULESH/AMPI machine (Fig. 14).
/// 2×12-core AMD per node; L2+L3 ≈ 36 MB/node as the paper reports.
pub fn hopper(num_pes: usize) -> MachineConfig {
    MachineConfig {
        name: format!("Hopper (Cray XE6) x{num_pes}"),
        num_pes,
        cores_per_chip: 24,
        pes_per_node: 24,
        flops_per_sec: 2.1e9,
        network: NetworkParams::gemini_torus(torus_dims_for(num_pes, 3)),
        thermal: None,
        speed: SpeedModel::uniform(num_pes),
        failures: FailurePlan::none(),
        disk: DiskModel::default(),
    }
}

/// Stampede (TACC): Sandy Bridge + InfiniBand. Figs. 5, 15.
pub fn stampede(num_pes: usize) -> MachineConfig {
    MachineConfig {
        name: format!("Stampede x{num_pes}"),
        num_pes,
        cores_per_chip: 16,
        pes_per_node: 16,
        flops_per_sec: 2.7e9,
        network: NetworkParams::infiniband(),
        thermal: None,
        speed: SpeedModel::uniform(num_pes),
        failures: FailurePlan::none(),
        disk: DiskModel::default(),
    }
}

/// The paper's private cloud: Xeon X5650 nodes on 1-gig Ethernet under kvm
/// (§IV-F). `vms` virtual machines, one PE each by default.
pub fn cloud(num_pes: usize) -> MachineConfig {
    MachineConfig {
        name: format!("private cloud (kvm, 1GigE) x{num_pes}"),
        num_pes,
        cores_per_chip: 4,
        pes_per_node: 1,
        flops_per_sec: 2.0e9,
        network: NetworkParams::ethernet_1g(),
        thermal: None,
        speed: SpeedModel::uniform(num_pes),
        failures: FailurePlan::none(),
        disk: DiskModel::default(),
    }
}

/// The thermal-testbed machine for the Fig. 4 reproduction: a small cluster
/// with per-chip DVFS and the CRAC at 74 °F.
pub fn thermal_testbed(num_pes: usize) -> MachineConfig {
    MachineConfig {
        name: format!("thermal testbed x{num_pes}"),
        num_pes,
        cores_per_chip: 4,
        pes_per_node: 4,
        flops_per_sec: 2.0e9,
        network: NetworkParams::infiniband(),
        thermal: Some(ThermalConfig::fig4()),
        speed: SpeedModel::uniform(num_pes),
        failures: FailurePlan::none(),
        disk: DiskModel::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_consistent_pe_counts() {
        for m in [
            bgq(1024),
            xe6(512),
            xk7(256),
            xt5(256),
            hopper(216),
            stampede(128),
            cloud(32),
            thermal_testbed(16),
        ] {
            assert!(m.num_pes > 0);
            assert_eq!(m.speed.len(), m.num_pes);
            assert!(m.flops_per_sec > 0.0);
        }
    }

    #[test]
    fn gemini_beats_seastar() {
        // The XK7-vs-XT5 gap in Fig. 11 comes partly from the network.
        let a = xk7(64).network;
        let b = xt5(64).network;
        assert!(a.alpha < b.alpha);
        assert!(a.beta_sec_per_byte < b.beta_sec_per_byte);
    }

    #[test]
    fn thermal_testbed_has_thermal_model() {
        let m = thermal_testbed(16);
        let t = m.thermal.as_ref().expect("thermal config present");
        assert!((t.threshold_c - 50.0).abs() < 1e-9);
        assert_eq!(m.num_chips(), 4);
    }

    #[test]
    fn torus_covers_pes() {
        let m = bgq(4096);
        let dims = m.network.torus_dims.clone().unwrap();
        let size: usize = dims.iter().product();
        assert!(size >= 4096);
    }
}
