//! Virtual time: integer nanoseconds since simulation start.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in (or span of) virtual time, in nanoseconds.
///
/// Integer representation keeps the event order total and replayable; all
/// cost models round to whole nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable time (used as "never").
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// From whole nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// From whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// From whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// From whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// From fractional seconds (rounds to nanoseconds; negative clamps to 0).
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 || !s.is_finite() {
            return SimTime(0);
        }
        SimTime((s * 1e9).round() as u64)
    }

    /// As fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// As fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// As fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Raw nanoseconds.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Saturating subtraction (spans never go negative).
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    /// The later of two times.
    pub fn max(self, rhs: SimTime) -> SimTime {
        if self >= rhs {
            self
        } else {
            rhs
        }
    }

    /// The earlier of two times.
    pub fn min(self, rhs: SimTime) -> SimTime {
        if self <= rhs {
            self
        } else {
            rhs
        }
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl SubAssign for SimTime {
    fn sub_assign(&mut self, rhs: SimTime) {
        self.0 -= rhs.0;
    }
}

impl Mul<f64> for SimTime {
    type Output = SimTime;
    fn mul(self, rhs: f64) -> SimTime {
        SimTime::from_secs_f64(self.as_secs_f64() * rhs)
    }
}

impl Div<u64> for SimTime {
    type Output = SimTime;
    fn div(self, rhs: u64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimTime::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimTime::from_millis(3).as_micros_f64(), 3000.0);
        assert!((SimTime::from_secs_f64(1.5).as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn arithmetic_and_ordering() {
        let a = SimTime::from_millis(5);
        let b = SimTime::from_millis(3);
        assert_eq!(a + b, SimTime::from_millis(8));
        assert_eq!(a - b, SimTime::from_millis(2));
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        assert!(b < a);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    fn negative_and_nan_seconds_clamp_to_zero() {
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::NAN), SimTime::ZERO);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", SimTime::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimTime::from_micros(12)), "12.000us");
        assert_eq!(format!("{}", SimTime::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimTime::from_secs(12)), "12.000s");
    }

    #[test]
    fn sum_of_spans() {
        let total: SimTime = (1..=4u64).map(SimTime::from_millis).sum();
        assert_eq!(total, SimTime::from_millis(10));
    }
}
