//! DAG re-simulation — the machine half of the `charm-replay` what-if mode
//! (BigSim-lite, paper §V-B).
//!
//! A recorded run is reduced to a dependency DAG: one node per executed
//! entry method (its declared FLOP count and send-side overhead counts),
//! one edge per consumed message (its wire size and how it was delivered —
//! point-to-point, collective tree, with or without a location-query round
//! trip). [`simulate_dag`] replays that DAG on an arbitrary
//! [`MachineConfig`], re-pricing computation at the new machine's FLOP rate
//! and per-PE speeds and communication through a fresh [`NetworkModel`] —
//! predicting makespan and per-PE utilization without re-running any
//! application logic.
//!
//! The cost model deliberately mirrors the runtime scheduler:
//!
//! * node duration = `work / (flops_per_sec × static_speed(pe))`
//!   + scheduling overhead + `n_remote` × injection overhead
//!   + `n_local` × local-delivery cost;
//! * point-to-point edge delay = `net.delay(src_pe, dst_pe, bytes)`, plus a
//!   2× envelope-sized round trip when the original send paid a location
//!   query;
//! * collective edge delay = `net.delay(0, 1, bytes)` × `tree_depth`
//!   (idealized balanced spanning tree, like broadcasts/reductions);
//! * each PE executes its arrivals FIFO (ties broken by submission order),
//!   exactly one node at a time.
//!
//! What it cannot see (frozen from the recording): which contributor
//! completes a reduction last, adaptive decisions the RTS would have made
//! differently (LB, DVFS), and interference/thermal transients — the
//! standard trace-driven-simulation caveats.

use crate::events::EventQueue;
use crate::network::NetworkModel;
use crate::{MachineConfig, SimTime};

/// One executed entry method of the recorded DAG.
#[derive(Debug, Clone)]
pub struct DagNode {
    /// PE the node runs on (already mapped to the what-if machine).
    pub pe: usize,
    /// Declared work in FLOP.
    pub work: f64,
    /// Sends charged at remote-injection cost.
    pub n_remote: u32,
    /// Sends charged at local-delivery cost.
    pub n_local: u32,
}

/// The message that triggers a node (each node has exactly one in-edge).
#[derive(Debug, Clone)]
pub struct DagEdge {
    /// Producing node, or `None` for externally injected messages (those
    /// are available at time zero plus their network delay).
    pub src: Option<usize>,
    /// Consuming node.
    pub dst: usize,
    /// Wire size including the envelope.
    pub bytes: usize,
    /// Spanning-tree depth for collective deliveries (0 = point-to-point).
    pub tree_depth: u32,
    /// Control-message size of a preceding location-query round trip
    /// (0 = none); charged as two extra small-message delays.
    pub rtt_bytes: usize,
    /// Jitter token the delay is priced with. The runtime prices every
    /// message with its `rec_id`, so passing the recorded message id here
    /// makes the what-if replay draw the *same* seeded jitter samples an
    /// actual run on the target machine would.
    pub token: u64,
}

/// Outcome of a what-if DAG replay.
#[derive(Debug, Clone)]
pub struct DagSimResult {
    /// Predicted end-to-end virtual time.
    pub makespan: SimTime,
    /// Predicted busy time per PE.
    pub pe_busy: Vec<SimTime>,
    /// Mean busy/makespan over the machine's PEs.
    pub utilization: f64,
    /// Nodes actually executed (always the full DAG — exposed for sanity
    /// checks).
    pub executed: usize,
}

/// Replay `nodes`/`edges` on `machine`. `sched_overhead` is the per-entry
/// scheduling cost (use the recording run's value); `seed` seeds the
/// network jitter RNG.
pub fn simulate_dag(
    machine: &MachineConfig,
    sched_overhead: SimTime,
    nodes: &[DagNode],
    edges: &[DagEdge],
    seed: u64,
) -> DagSimResult {
    let p = machine.num_pes;
    let mut net = NetworkModel::new(machine.network.clone(), seed);

    // Exactly one in-edge per node; out-edges adjacency from src.
    let mut in_edge: Vec<Option<usize>> = vec![None; nodes.len()];
    let mut out_edges: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    let mut root_edges: Vec<usize> = Vec::new();
    for (ei, e) in edges.iter().enumerate() {
        assert!(e.dst < nodes.len(), "edge to unknown node {}", e.dst);
        assert!(
            in_edge[e.dst].replace(ei).is_none(),
            "node {} has more than one trigger edge",
            e.dst
        );
        match e.src {
            Some(s) => {
                assert!(s < nodes.len(), "edge from unknown node {s}");
                out_edges[s].push(ei);
            }
            None => root_edges.push(ei),
        }
    }

    // Event-driven replay: Arrival(node) enqueues on its PE; PeFree pops
    // the next queued node FIFO. The event queue's internal insertion
    // sequence keeps the (time, seq) order total, exactly as the explicit
    // counter alongside the old binary heap did.
    enum Ev {
        Free { pe: usize },
        Arrive { node: usize },
    }
    let mut events: EventQueue<Ev> = EventQueue::new();
    let mut queues: Vec<std::collections::VecDeque<usize>> = vec![Default::default(); p];
    let mut pe_busy_until: Vec<u64> = vec![0; p];
    let mut pe_idle: Vec<bool> = vec![true; p];
    let mut pe_busy: Vec<u64> = vec![0; p];
    let mut executed = 0usize;
    let mut makespan = 0u64;

    fn edge_delay(
        net: &mut NetworkModel,
        p: usize,
        e: &DagEdge,
        src_pe: usize,
        dst_pe: usize,
    ) -> SimTime {
        let token = e.token;
        let mut d = if e.tree_depth > 0 {
            let level = net.delay(0, 1.min(p.saturating_sub(1)), e.bytes, token);
            SimTime(level.0 * e.tree_depth as u64)
        } else {
            net.delay(src_pe, dst_pe, e.bytes, token)
        };
        if e.rtt_bytes > 0 {
            // Home-PE location query: request + response, envelope-sized.
            d = d
                + net.delay(src_pe, dst_pe, e.rtt_bytes, token ^ (1 << 62))
                + net.delay(dst_pe, src_pe, e.rtt_bytes, token ^ (2 << 62));
        }
        d
    }

    for &ei in &root_edges {
        let e = &edges[ei];
        let dst_pe = nodes[e.dst].pe % p;
        let d = edge_delay(&mut net, p, e, 0, dst_pe);
        events.push(d, Ev::Arrive { node: e.dst });
    }

    while let Some((t, ev)) = events.pop() {
        let t = t.0;
        makespan = makespan.max(t);
        match ev {
            Ev::Arrive { node } => {
                let pe = nodes[node].pe % p;
                queues[pe].push_back(node);
                if pe_idle[pe] {
                    pe_idle[pe] = false;
                    events.push(SimTime(t.max(pe_busy_until[pe])), Ev::Free { pe });
                }
            }
            Ev::Free { pe } => {
                let Some(node) = queues[pe].pop_front() else {
                    pe_idle[pe] = true;
                    continue;
                };
                let n = &nodes[node];
                let speed = machine.flops_per_sec * machine.speed.static_speed(pe).max(1e-12);
                let work = SimTime::from_secs_f64(n.work / speed);
                let send_cost = SimTime(
                    net.send_overhead().0 * n.n_remote as u64
                        + net.params().local_delivery.0 * n.n_local as u64,
                );
                let dur = work + sched_overhead + send_cost;
                let end = t + dur.0;
                pe_busy[pe] += dur.0;
                pe_busy_until[pe] = end;
                executed += 1;
                makespan = makespan.max(end);
                // Emit this node's out-edges at completion.
                for &ei in &out_edges[node] {
                    let e = &edges[ei];
                    let dst_pe = nodes[e.dst].pe % p;
                    let d = edge_delay(&mut net, p, e, pe, dst_pe);
                    events.push(SimTime(end + d.0), Ev::Arrive { node: e.dst });
                }
                // PE picks up its next queued node when this one ends.
                events.push(SimTime(end), Ev::Free { pe });
            }
        }
    }

    let util = if makespan > 0 {
        pe_busy.iter().map(|&b| b as f64 / makespan as f64).sum::<f64>() / p as f64
    } else {
        0.0
    };
    DagSimResult {
        makespan: SimTime(makespan),
        pe_busy: pe_busy.into_iter().map(SimTime).collect(),
        utilization: util,
        executed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(n: usize, pe: usize) -> (Vec<DagNode>, Vec<DagEdge>) {
        let nodes = (0..n)
            .map(|_| DagNode {
                pe,
                work: 1e6,
                n_remote: 1,
                n_local: 0,
            })
            .collect();
        let edges = (0..n)
            .map(|i| DagEdge {
                src: if i == 0 { None } else { Some(i - 1) },
                dst: i,
                bytes: 128,
                tree_depth: 0,
                rtt_bytes: 0,
                token: i as u64,
            })
            .collect();
        (nodes, edges)
    }

    #[test]
    fn chain_is_sequential() {
        let m = MachineConfig::homogeneous(4);
        let (nodes, edges) = chain(10, 0);
        let r = simulate_dag(&m, SimTime::from_nanos(250), &nodes, &edges, 1);
        assert_eq!(r.executed, 10);
        // 10 × (1e6 FLOP at 1e9 FLOP/s = 1 ms each) ⇒ ≥ 10 ms.
        assert!(r.makespan.as_secs_f64() >= 0.01, "{:?}", r.makespan);
        // Only PE 0 is ever busy.
        assert!(r.pe_busy[0] > SimTime::ZERO);
        assert_eq!(r.pe_busy[1], SimTime::ZERO);
    }

    #[test]
    fn parallel_fan_out_overlaps() {
        let m = MachineConfig::homogeneous(4);
        // A root node on PE 0 fans out to one heavy node per PE.
        let mut nodes = vec![DagNode {
            pe: 0,
            work: 0.0,
            n_remote: 4,
            n_local: 0,
        }];
        let mut edges = vec![DagEdge {
            src: None,
            dst: 0,
            bytes: 64,
            tree_depth: 0,
            rtt_bytes: 0,
            token: 0,
        }];
        for pe in 0..4 {
            nodes.push(DagNode {
                pe,
                work: 1e7,
                n_remote: 0,
                n_local: 0,
            });
            edges.push(DagEdge {
                src: Some(0),
                dst: nodes.len() - 1,
                bytes: 1024,
                tree_depth: 0,
                rtt_bytes: 0,
                token: pe as u64 + 1,
            });
        }
        let r = simulate_dag(&m, SimTime::from_nanos(250), &nodes, &edges, 1);
        assert_eq!(r.executed, 5);
        // Parallel: makespan ≈ one 10-ms node + latency, far below 4 × 10 ms.
        assert!(r.makespan.as_secs_f64() < 0.02, "{:?}", r.makespan);
        assert!(r.utilization > 0.3, "{}", r.utilization);
    }

    #[test]
    fn faster_machine_shrinks_makespan() {
        let slow = MachineConfig::homogeneous(2);
        let mut fast = MachineConfig::homogeneous(2);
        fast.flops_per_sec *= 4.0;
        let (nodes, edges) = chain(20, 1);
        let so = SimTime::from_nanos(250);
        let r_slow = simulate_dag(&slow, so, &nodes, &edges, 1);
        let r_fast = simulate_dag(&fast, so, &nodes, &edges, 1);
        assert!(r_fast.makespan < r_slow.makespan);
    }

    #[test]
    #[should_panic(expected = "more than one trigger edge")]
    fn rejects_double_trigger() {
        let m = MachineConfig::homogeneous(2);
        let (nodes, mut edges) = chain(2, 0);
        edges.push(DagEdge {
            src: Some(0),
            dst: 1,
            bytes: 1,
            tree_depth: 0,
            rtt_bytes: 0,
            token: 99,
        });
        simulate_dag(&m, SimTime::ZERO, &nodes, &edges, 1);
    }
}
