//! # charm-machine — a deterministic discrete-event machine simulator
//!
//! The hardware substrate the charm-rs runtime executes on. The paper's
//! evaluation ran on IBM BG/Q, Cray XE6/XK7/XT5, Hopper, Stampede and a
//! kvm cloud; none of those are available here, so this crate models them:
//!
//! * [`SimTime`] — integer-nanosecond virtual time,
//! * [`EventQueue`] — a total-ordered (time, sequence) event heap,
//! * [`NetworkModel`] — α + size·β (+ hops·γ) message cost with optional
//!   N-dimensional torus topologies and seeded jitter,
//! * [`thermal`] — a lumped-RC chip temperature model with a DVFS ladder,
//! * [`SpeedModel`] — static per-PE heterogeneity plus timed interference
//!   windows (cloud multi-tenancy),
//! * [`FailurePlan`] — scheduled node crashes,
//! * [`DiskModel`] — checkpoint I/O cost,
//! * [`presets`] — parameterizations approximating each machine the paper
//!   used.
//!
//! Everything is a *passive cost/state model*: the runtime in `charm-core`
//! drives the event loop and asks these models what things cost. All
//! stochastic elements draw from seeded RNGs, so entire runs replay
//! bit-identically.

pub mod dagsim;
mod disk;
mod events;
mod failure;
mod network;
pub mod presets;
pub mod rss;
mod speed;
pub mod thermal;
mod time;
pub mod topology;

pub use dagsim::{simulate_dag, DagEdge, DagNode, DagSimResult};
pub use disk::{DiskFault, DiskModel};
pub use events::{EventQueue, PrioQueue};
pub use failure::{Failure, FailureKind, FailurePlan};
pub use network::{NetCounters, NetworkModel, NetworkParams};
pub use rss::{current_rss_bytes, peak_rss_bytes};
pub use speed::{InterferenceWindow, SpeedModel};
pub use time::SimTime;
pub use topology::Torus;

use thermal::ThermalConfig;

/// Full description of a simulated machine.
///
/// Build one from a [`presets`] constructor and tweak fields, or assemble it
/// directly.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Human-readable name used in reports ("Vesta (IBM BG/Q)", …).
    pub name: String,
    /// Number of processing elements (cores, or hardware threads for BG/Q
    /// runs using multiple processes per core).
    pub num_pes: usize,
    /// Cores grouped onto one chip — the granularity of the thermal model
    /// and of DVFS decisions.
    pub cores_per_chip: usize,
    /// PEs sharing one physical node — the granularity of failures: when a
    /// node dies, every PE in its range dies with it.
    pub pes_per_node: usize,
    /// Reference compute throughput of one PE, in work-units per second.
    /// Entry methods declare their cost in work-units; a PE at speed 1.0
    /// executes `flops_per_sec` of them per virtual second.
    pub flops_per_sec: f64,
    /// The interconnect model.
    pub network: NetworkParams,
    /// Thermal/DVFS model (None = temperature is not simulated).
    pub thermal: Option<ThermalConfig>,
    /// Per-PE static speed plus dynamic interference.
    pub speed: SpeedModel,
    /// Node failures to inject.
    pub failures: FailurePlan,
    /// Disk used for file-based checkpoints.
    pub disk: DiskModel,
}

impl MachineConfig {
    /// A small homogeneous machine with an InfiniBand-like network —
    /// a reasonable default for tests and quickstarts.
    pub fn homogeneous(num_pes: usize) -> Self {
        MachineConfig {
            name: format!("generic-{num_pes}"),
            num_pes,
            cores_per_chip: 16,
            pes_per_node: 1,
            flops_per_sec: 1e9,
            network: NetworkParams::infiniband(),
            thermal: None,
            speed: SpeedModel::uniform(num_pes),
            failures: FailurePlan::none(),
            disk: DiskModel::default(),
        }
    }

    /// Change the PE count, keeping all cost models (used by strong-scaling
    /// sweeps and by malleable shrink/expand).
    pub fn with_pes(mut self, num_pes: usize) -> Self {
        self.num_pes = num_pes;
        self.speed.resize(num_pes);
        self
    }

    /// Number of chips implied by `num_pes` / `cores_per_chip`.
    pub fn num_chips(&self) -> usize {
        self.num_pes.div_ceil(self.cores_per_chip)
    }

    /// Chip that hosts a PE.
    pub fn chip_of(&self, pe: usize) -> usize {
        pe / self.cores_per_chip
    }

    /// Change the node size, keeping everything else (builder-style).
    pub fn with_pes_per_node(mut self, pes_per_node: usize) -> Self {
        assert!(pes_per_node >= 1, "a node holds at least one PE");
        self.pes_per_node = pes_per_node;
        self
    }

    /// Number of physical nodes implied by `num_pes` / `pes_per_node`.
    pub fn num_nodes(&self) -> usize {
        self.num_pes.div_ceil(self.pes_per_node.max(1))
    }

    /// Node that hosts a PE.
    pub fn node_of(&self, pe: usize) -> usize {
        pe / self.pes_per_node.max(1)
    }

    /// The PE range of one node (the last node may be partial).
    pub fn node_pe_range(&self, node: usize) -> std::ops::Range<usize> {
        let ppn = self.pes_per_node.max(1);
        let start = node * ppn;
        start..((start + ppn).min(self.num_pes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_machine_shape() {
        let m = MachineConfig::homogeneous(64);
        assert_eq!(m.num_pes, 64);
        assert_eq!(m.num_chips(), 4);
        assert_eq!(m.chip_of(0), 0);
        assert_eq!(m.chip_of(17), 1);
        assert_eq!(m.chip_of(63), 3);
    }

    #[test]
    fn node_geometry() {
        let m = MachineConfig::homogeneous(64).with_pes_per_node(16);
        assert_eq!(m.num_nodes(), 4);
        assert_eq!(m.node_of(0), 0);
        assert_eq!(m.node_of(15), 0);
        assert_eq!(m.node_of(16), 1);
        assert_eq!(m.node_pe_range(1), 16..32);
        // Partial trailing node.
        let m = MachineConfig::homogeneous(20).with_pes_per_node(16);
        assert_eq!(m.num_nodes(), 2);
        assert_eq!(m.node_pe_range(1), 16..20);
    }

    #[test]
    fn with_pes_resizes_speed_model() {
        let m = MachineConfig::homogeneous(8).with_pes(32);
        assert_eq!(m.num_pes, 32);
        // every PE must have a defined speed
        for pe in 0..32 {
            assert!(m.speed.static_speed(pe) > 0.0);
        }
    }
}
