//! The discrete-event heap: a total order over (time, insertion sequence).

use crate::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A deterministic event queue.
///
/// Events with equal timestamps pop in insertion order, which — together
/// with seeded RNGs everywhere else — makes whole simulations replayable.
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    seq: u64,
}

struct Entry<T> {
    key: Reverse<(SimTime, u64)>,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

impl<T> EventQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedule `payload` at `time`.
    pub fn push(&mut self, time: SimTime, payload: T) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry {
            key: Reverse((time, seq)),
            payload,
        });
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        self.heap.pop().map(|e| (e.key.0 .0, e.payload))
    }

    /// Timestamp of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.key.0 .0)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drop all pending events (used when a simulation is aborted).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(30), "c");
        q.push(SimTime::from_nanos(10), "a");
        q.push(SimTime::from_nanos(20), "b");
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(2), ());
        q.push(SimTime::from_millis(1), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(1)));
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_millis(1));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, 1);
        q.clear();
        assert!(q.is_empty());
    }
}
