//! The discrete-event queue: a total order over (time, insertion sequence).
//!
//! Two backends share one API and one ordering contract:
//!
//! * **Calendar** (default) — a bucket-per-timestamp structure tuned for the
//!   distributions simulations actually generate: near-monotone inserts and
//!   heavy same-timestamp ties. A binary heap orders only the *distinct*
//!   timestamps; all events sharing a timestamp live in one bucket that is
//!   appended in O(1) and key-sorted lazily (at most once per drain, and only
//!   when out-of-order keys actually arrived). Popping a whole timestep —
//!   the engine's batch-dispatch hot path — hands back the bucket in one
//!   `extend` instead of N heap pops, so the per-event cost no longer pays
//!   O(log n) against the full event population.
//! * **Heap** — the original `BinaryHeap` over `(time, key)`. Kept as the
//!   reference model for the property suite and as a builder-selectable
//!   fallback, so "new queue vs. old queue" stays a one-flag A/B test.
//!
//! Both backends pop in identical `(time, key)` order; replay logs recorded
//! against one verify byte-for-byte against the other.

use crate::SimTime;
use fxhash::FxHashMap;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// A deterministic event queue.
///
/// Events with equal timestamps pop in insertion order, which — together
/// with seeded RNGs everywhere else — makes whole simulations replayable.
pub struct EventQueue<T> {
    seq: u64,
    ops: u64,
    backend: Backend<T>,
}

enum Backend<T> {
    Calendar(Calendar<T>),
    Heap(BinaryHeap<Entry<T>>),
}

struct Entry<T> {
    key: Reverse<(SimTime, u64)>,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

/// One timestamp's events: appended in arrival order, sorted by key only
/// when a drain needs the order and an out-of-order key actually arrived.
///
/// Jittered-delay workloads (PDES, random networks) produce mostly-distinct
/// timestamps, so the overwhelmingly common population is exactly one event.
/// That case is stored inline — no deque allocation, no pool round trip —
/// and upgraded to a real deque only when a second event lands on the same
/// timestamp.
enum Bucket<T> {
    One(u64, T),
    Many {
        items: VecDeque<(u64, T)>,
        /// `items` is ascending by key. Maintained on push by comparing
        /// against the current back (cheap: pushes from a monotone sequence
        /// counter never unsort the bucket); repaired lazily on drain
        /// otherwise.
        sorted: bool,
    },
}

impl<T> Bucket<T> {
    fn ensure_sorted(&mut self) {
        if let Bucket::Many { items, sorted } = self {
            if !*sorted {
                items.make_contiguous().sort_unstable_by_key(|e| e.0);
                *sorted = true;
            }
        }
    }

    fn len(&self) -> usize {
        match self {
            Bucket::One(..) => 1,
            Bucket::Many { items, .. } => items.len(),
        }
    }
}

struct Calendar<T> {
    /// Distinct pending timestamps (min-heap). Invariant: `t` is in this
    /// heap exactly once iff `buckets[t]` exists and is non-empty.
    times: BinaryHeap<Reverse<u64>>,
    buckets: FxHashMap<u64, Bucket<T>>,
    /// Emptied bucket storage, recycled so steady-state push/drain cycles
    /// allocate nothing.
    pool: Vec<VecDeque<(u64, T)>>,
    len: usize,
}

/// Buckets kept for reuse after they drain. A handful suffices: only a few
/// distinct timestamps are live at once in practice.
const BUCKET_POOL_MAX: usize = 32;

impl<T> Calendar<T> {
    fn with_capacity(cap: usize) -> Self {
        Calendar {
            times: BinaryHeap::with_capacity(cap),
            buckets: FxHashMap::default(),
            pool: Vec::new(),
            len: 0,
        }
    }

    fn push(&mut self, t: u64, key: u64, payload: T) {
        use std::collections::hash_map::Entry as MapEntry;
        self.len += 1;
        match self.buckets.entry(t) {
            MapEntry::Occupied(mut e) => match e.get_mut() {
                b @ Bucket::One(..) => {
                    // Second event on this timestamp: upgrade to a deque.
                    // `VecDeque::new()` is allocation-free, so the interim
                    // placeholder costs nothing.
                    let placeholder = Bucket::Many { items: VecDeque::new(), sorted: true };
                    let Bucket::One(k0, p0) = std::mem::replace(b, placeholder) else {
                        unreachable!()
                    };
                    let mut items = self.pool.pop().unwrap_or_default();
                    let sorted = k0 <= key;
                    items.push_back((k0, p0));
                    items.push_back((key, payload));
                    *b = Bucket::Many { items, sorted };
                }
                Bucket::Many { items, sorted } => {
                    if *sorted {
                        if let Some(&(back, _)) = items.back() {
                            if key < back {
                                *sorted = false;
                            }
                        }
                    }
                    items.push_back((key, payload));
                }
            },
            MapEntry::Vacant(e) => {
                e.insert(Bucket::One(key, payload));
                self.times.push(Reverse(t));
            }
        }
    }

    fn recycle(&mut self, mut items: VecDeque<(u64, T)>) {
        if self.pool.len() < BUCKET_POOL_MAX {
            items.clear();
            self.pool.push(items);
        }
    }

    fn pop(&mut self) -> Option<(u64, u64, T)> {
        let &Reverse(t) = self.times.peek()?;
        self.len -= 1;
        match self.buckets.get_mut(&t).expect("bucket for scheduled time") {
            Bucket::One(..) => {
                let Bucket::One(key, payload) = self.buckets.remove(&t).expect("just accessed")
                else {
                    unreachable!()
                };
                self.times.pop();
                Some((t, key, payload))
            }
            b @ Bucket::Many { .. } => {
                b.ensure_sorted();
                let Bucket::Many { items, .. } = b else { unreachable!() };
                let (key, payload) = items.pop_front().expect("non-empty bucket");
                if items.is_empty() {
                    let Bucket::Many { items, .. } =
                        self.buckets.remove(&t).expect("just accessed")
                    else {
                        unreachable!()
                    };
                    self.recycle(items);
                    self.times.pop();
                }
                Some((t, key, payload))
            }
        }
    }

    /// Remove and return the whole bucket at the head timestamp `t`, key-
    /// sorted. Caller guarantees `t` is the head.
    fn take_head_bucket(&mut self, t: u64) -> Bucket<T> {
        let mut b = self.buckets.remove(&t).expect("head bucket");
        b.ensure_sorted();
        self.times.pop();
        self.len -= b.len();
        b
    }
}

impl<T> EventQueue<T> {
    /// An empty queue (calendar-backed).
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// An empty queue with room for `cap` distinct timestamps before
    /// reallocating.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            seq: 0,
            ops: 0,
            backend: Backend::Calendar(Calendar::with_capacity(cap)),
        }
    }

    /// An empty queue on the classic `BinaryHeap` backend — the reference
    /// model for the property suite and the A/B fallback for regression
    /// hunting. Ordering is identical to the calendar backend.
    pub fn heap_backed() -> Self {
        Self::heap_backed_with_capacity(0)
    }

    /// [`heap_backed`](Self::heap_backed) with pre-allocated room for `cap`
    /// events.
    pub fn heap_backed_with_capacity(cap: usize) -> Self {
        EventQueue {
            seq: 0,
            ops: 0,
            backend: Backend::Heap(BinaryHeap::with_capacity(cap)),
        }
    }

    /// Is this queue on the classic heap backend?
    pub fn is_heap_backed(&self) -> bool {
        matches!(self.backend, Backend::Heap(_))
    }

    /// Queue operations performed so far (one per push, one per popped
    /// event). Feeds the engine's `queue_ops` throughput counter.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    fn insert(&mut self, time: SimTime, key: u64, payload: T) {
        self.ops += 1;
        match &mut self.backend {
            Backend::Calendar(c) => c.push(time.0, key, payload),
            Backend::Heap(h) => h.push(Entry {
                key: Reverse((time, key)),
                payload,
            }),
        }
    }

    /// Schedule `payload` at `time`.
    pub fn push(&mut self, time: SimTime, payload: T) {
        let seq = self.seq;
        self.seq += 1;
        self.insert(time, seq, payload);
    }

    /// Schedule `payload` at `time` under a caller-supplied tie-break key.
    ///
    /// Same-time events pop in ascending `key` order. This is how the
    /// sharded engine keeps one global total order: keys are allocated from
    /// per-PE counters that advance identically whether the simulation runs
    /// on one thread or many, so `(time, key)` is mode-independent where
    /// the implicit insertion sequence is not. Keys must be unique among
    /// live entries; mixing `push` and `push_keyed` in one queue is allowed
    /// only if the caller keeps the two key spaces disjoint.
    pub fn push_keyed(&mut self, time: SimTime, key: u64, payload: T) {
        self.insert(time, key, payload);
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        let out = match &mut self.backend {
            Backend::Calendar(c) => c.pop().map(|(t, _, p)| (SimTime(t), p)),
            Backend::Heap(h) => h.pop().map(|e| (e.key.0 .0, e.payload)),
        };
        if out.is_some() {
            self.ops += 1;
        }
        out
    }

    /// Timestamp of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        match &self.backend {
            Backend::Calendar(c) => c.times.peek().map(|&Reverse(t)| SimTime(t)),
            Backend::Heap(h) => h.peek().map(|e| e.key.0 .0),
        }
    }

    /// Pop every event scheduled exactly at `t`, in insertion order.
    ///
    /// Equivalent to (and ordered identically to) repeated `pop` while the
    /// head's timestamp equals `t` — callers batch a whole timestep in one
    /// pass instead of re-peeking the heap per event. Events pushed at `t`
    /// *after* this call get later sequence numbers and surface in the next
    /// batch, exactly as they would have popped after the existing ties.
    pub fn pop_batch_at(&mut self, t: SimTime) -> Vec<T> {
        let mut out = Vec::new();
        self.pop_batch_at_into(t, &mut out);
        out
    }

    /// [`pop_batch_at`](Self::pop_batch_at) into a caller-owned buffer —
    /// the hot loop reuses one allocation across timesteps. Clears `out`
    /// first.
    pub fn pop_batch_at_into(&mut self, t: SimTime, out: &mut Vec<T>) {
        out.clear();
        if self.peek_time() != Some(t) {
            return;
        }
        match &mut self.backend {
            Backend::Calendar(c) => match c.take_head_bucket(t.0) {
                Bucket::One(_, p) => out.push(p),
                Bucket::Many { mut items, .. } => {
                    out.extend(items.drain(..).map(|(_, p)| p));
                    c.recycle(items);
                }
            },
            Backend::Heap(h) => {
                while let Some(head) = h.peek() {
                    if head.key.0 .0 != t {
                        break;
                    }
                    out.push(h.pop().expect("peeked").payload);
                }
            }
        }
        self.ops += out.len() as u64;
    }

    /// [`pop_batch_at_into`](Self::pop_batch_at_into), but each payload is
    /// paired with its tie-break sequence number so unprocessed entries can
    /// be [`restore`](Self::restore)d in exactly their original position.
    pub fn pop_batch_at_seq_into(&mut self, t: SimTime, out: &mut Vec<(u64, T)>) {
        out.clear();
        if self.peek_time() != Some(t) {
            return;
        }
        match &mut self.backend {
            Backend::Calendar(c) => match c.take_head_bucket(t.0) {
                Bucket::One(k, p) => out.push((k, p)),
                Bucket::Many { mut items, .. } => {
                    out.extend(items.drain(..));
                    c.recycle(items);
                }
            },
            Backend::Heap(h) => {
                while let Some(head) = h.peek() {
                    if head.key.0 .0 != t {
                        break;
                    }
                    let e = h.pop().expect("peeked");
                    out.push((e.key.0 .1, e.payload));
                }
            }
        }
        self.ops += out.len() as u64;
    }

    /// Re-insert an entry obtained from
    /// [`pop_batch_at_seq_into`](Self::pop_batch_at_seq_into) under its
    /// original `(time, seq)` key, so it pops exactly where repeated
    /// [`pop`](Self::pop) would have placed it — ahead of any same-time
    /// event pushed since the batch was taken. The caller must only pass
    /// keys it popped (reusing a live key would break the total order).
    pub fn restore(&mut self, t: SimTime, seq: u64, payload: T) {
        self.insert(t, seq, payload);
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        match &self.backend {
            Backend::Calendar(c) => c.len,
            Backend::Heap(h) => h.len(),
        }
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current allocated capacity, in entries, across the queue's internal
    /// storage (timestamp index, live buckets, and the recycled-bucket pool
    /// on the calendar backend; the heap itself on the heap backend).
    pub fn capacity(&self) -> usize {
        match &self.backend {
            Backend::Calendar(c) => {
                c.times.capacity()
                    + c.buckets
                        .values()
                        .map(|b| match b {
                            Bucket::One(..) => 1,
                            Bucket::Many { items, .. } => items.capacity(),
                        })
                        .sum::<usize>()
                    + c.pool.iter().map(|v| v.capacity()).sum::<usize>()
            }
            Backend::Heap(h) => h.capacity(),
        }
    }

    /// Remove every pending entry with its `(time, key)` coordinates, in
    /// pop order. Used to partition a queue across shards; re-inserting the
    /// entries elsewhere with [`push_keyed`](Self::push_keyed) preserves the
    /// total order.
    pub fn drain_entries(&mut self) -> Vec<(SimTime, u64, T)> {
        let mut out = Vec::with_capacity(self.len());
        match &mut self.backend {
            Backend::Calendar(c) => {
                while let Some((t, k, p)) = c.pop() {
                    out.push((SimTime(t), k, p));
                }
            }
            Backend::Heap(h) => {
                while let Some(e) = h.pop() {
                    out.push((e.key.0 .0, e.key.0 .1, e.payload));
                }
            }
        }
        self.ops += out.len() as u64;
        out
    }

    /// Capacity retained across [`clear`](Self::clear). Queues grow to the
    /// high-water mark of a run; anything beyond this cap is returned to
    /// the allocator on clear so long campaigns of many simulations don't
    /// pin peak memory forever.
    pub const CLEAR_RETAIN_CAP: usize = 1 << 12;

    /// Drop all pending events (used when a simulation is aborted) and
    /// reset the tie-break sequence, so a cleared queue is indistinguishable
    /// from a fresh one — reruns after an abort stay deterministic.
    ///
    /// Capacity above [`CLEAR_RETAIN_CAP`](Self::CLEAR_RETAIN_CAP) is
    /// released; a modest working buffer is kept so clear-then-refill
    /// cycles don't pay reallocation from zero.
    pub fn clear(&mut self) {
        self.seq = 0;
        match &mut self.backend {
            Backend::Calendar(c) => {
                let retain = Self::CLEAR_RETAIN_CAP / 2;
                for (_, b) in c.buckets.drain() {
                    if let Bucket::Many { mut items, .. } = b {
                        if c.pool.len() < BUCKET_POOL_MAX {
                            items.clear();
                            c.pool.push(items);
                        }
                    }
                }
                c.times.clear();
                c.len = 0;
                if c.times.capacity() > retain {
                    c.times.shrink_to(retain);
                }
                // Bound the recycled-bucket pool the same way.
                while c.pool.iter().map(|v| v.capacity()).sum::<usize>() > retain {
                    c.pool.pop();
                }
            }
            Backend::Heap(h) => {
                h.clear();
                if h.capacity() > Self::CLEAR_RETAIN_CAP {
                    h.shrink_to(Self::CLEAR_RETAIN_CAP);
                }
            }
        }
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// A deterministic priority queue with FIFO order inside each priority
/// class — the PE scheduler queue.
///
/// The engine's per-PE pending queues used to be `BinaryHeap<(prio, seq)>`;
/// but the sequence numbers pushed into any one queue come from a globally
/// monotone message counter, so FIFO-within-priority *is* `(prio, seq)`
/// order. This structure exploits that: a short sorted list of the distinct
/// active priorities (almost always 1–2: system and default) selects a
/// per-priority `VecDeque` lane, making push and pop O(1) instead of
/// O(log queue-depth).
pub struct PrioQueue<T> {
    /// Parallel arrays: the distinct active priorities, sorted descending —
    /// the minimum (highest-urgency, pops first) sits at the back — and
    /// their FIFO lanes. A sorted `Vec` beats a hash map here: almost every
    /// push hits the priority already at the back, so the common path is a
    /// single integer compare with no hashing at all.
    prios: Vec<i64>,
    lanes: Vec<VecDeque<T>>,
    /// Drained lane storage, recycled so push/pop cycles allocate nothing.
    pool: Vec<VecDeque<T>>,
    len: usize,
    ops: u64,
}

/// Lanes kept for reuse after they drain; a few distinct priorities are
/// ever live at once.
const LANE_POOL_MAX: usize = 8;

impl<T> PrioQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        PrioQueue {
            prios: Vec::new(),
            lanes: Vec::new(),
            pool: Vec::new(),
            len: 0,
            ops: 0,
        }
    }

    /// Append `v` to the `prio` class. Smaller `prio` values pop first;
    /// equal priorities pop in insertion order.
    pub fn push(&mut self, prio: i64, v: T) {
        self.ops += 1;
        self.len += 1;
        // Fast path: the class already active at the back (the common
        // single-priority case).
        if self.prios.last() == Some(&prio) {
            self.lanes.last_mut().expect("lane per prio").push_back(v);
            return;
        }
        let pos = self.prios.partition_point(|&p| p > prio);
        if self.prios.get(pos) == Some(&prio) {
            self.lanes[pos].push_back(v);
        } else {
            let mut lane = self.pool.pop().unwrap_or_default();
            lane.push_back(v);
            self.prios.insert(pos, prio);
            self.lanes.insert(pos, lane);
        }
    }

    /// Remove and return the front of the lowest-priority-value class.
    pub fn pop(&mut self) -> Option<T> {
        let lane = self.lanes.last_mut()?;
        let v = lane.pop_front().expect("non-empty lane");
        if lane.is_empty() {
            self.prios.pop();
            let lane = self.lanes.pop().expect("lane per prio");
            if self.pool.len() < LANE_POOL_MAX {
                self.pool.push(lane);
            }
        }
        self.len -= 1;
        self.ops += 1;
        Some(v)
    }

    /// Queued item count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Queue operations performed so far (one per push, one per pop).
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Drop everything (lane storage is retained for reuse).
    pub fn clear(&mut self) {
        for mut lane in self.lanes.drain(..) {
            lane.clear();
            if self.pool.len() < LANE_POOL_MAX {
                self.pool.push(lane);
            }
        }
        self.prios.clear();
        self.len = 0;
    }
}

impl<T> Default for PrioQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(30), "c");
        q.push(SimTime::from_nanos(10), "a");
        q.push(SimTime::from_nanos(20), "b");
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(2), ());
        q.push(SimTime::from_millis(1), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(1)));
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_millis(1));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, 1);
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn clear_resets_sequence() {
        let mut q = EventQueue::new();
        for i in 0..5 {
            q.push(SimTime::from_nanos(1), i);
        }
        q.clear();
        // After clear, tie-breaking restarts from seq 0: a fresh queue and a
        // cleared queue order identical pushes identically.
        let t = SimTime::from_nanos(2);
        q.push(t, 10);
        q.push(t, 11);
        q.push(t, 12);
        assert_eq!(q.pop().unwrap().1, 10);
        assert_eq!(q.pop().unwrap().1, 11);
        assert_eq!(q.pop().unwrap().1, 12);
    }

    #[test]
    fn batch_pop_matches_repeated_pop_on_ties() {
        let t1 = SimTime::from_nanos(10);
        let t2 = SimTime::from_nanos(20);
        let mut q = EventQueue::new();
        let mut q2 = EventQueue::new();
        // Interleave pushes at two timestamps; ties must come out in
        // insertion order from both APIs.
        for i in 0..50 {
            let t = if i % 3 == 0 { t2 } else { t1 };
            q.push(t, i);
            q2.push(t, i);
        }
        let head = q.peek_time().unwrap();
        assert_eq!(head, t1);
        let batch = q.pop_batch_at(head);
        let mut expected = Vec::new();
        while q2.peek_time() == Some(head) {
            expected.push(q2.pop().unwrap().1);
        }
        assert_eq!(batch, expected);
        assert!(batch.windows(2).all(|w| w[0] < w[1]), "insertion order");
        // The later timestamp's events are untouched.
        assert_eq!(q.peek_time(), Some(t2));
        assert_eq!(q.len(), q2.len());
    }

    #[test]
    fn batch_pop_into_reuses_buffer_and_clears_it() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(7);
        q.push(t, 1);
        q.push(t, 2);
        q.push(SimTime::from_nanos(8), 3);
        let mut buf = vec![99, 98, 97];
        q.pop_batch_at_into(t, &mut buf);
        assert_eq!(buf, vec![1, 2]);
        // A batch at a timestamp with no events leaves an empty buffer.
        q.pop_batch_at_into(SimTime::from_nanos(9), &mut buf);
        assert!(buf.is_empty());
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    fn restore_puts_leftovers_ahead_of_newer_ties() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(4);
        q.push(t, "a");
        q.push(t, "b");
        let mut batch = Vec::new();
        q.pop_batch_at_seq_into(t, &mut batch);
        assert_eq!(batch.len(), 2);
        // "c" arrives at the same timestamp while the batch is out.
        q.push(t, "c");
        // Only "a" was processed; "b" goes back with its original seq and
        // must pop before "c", exactly as repeated pop() would have ordered.
        let (seq_b, b) = batch.remove(1);
        q.restore(t, seq_b, b);
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
    }

    #[test]
    fn keyed_pushes_order_ties_by_key_not_arrival() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        q.push_keyed(t, 30, "c");
        q.push_keyed(t, 10, "a");
        q.push_keyed(SimTime::from_nanos(4), 99, "first");
        q.push_keyed(t, 20, "b");
        assert_eq!(q.pop().unwrap().1, "first");
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
    }

    #[test]
    fn drain_entries_roundtrips_through_push_keyed() {
        let mut q = EventQueue::new();
        q.push_keyed(SimTime::from_nanos(2), 7, "b");
        q.push_keyed(SimTime::from_nanos(1), 9, "a");
        q.push_keyed(SimTime::from_nanos(2), 3, "c");
        let entries = q.drain_entries();
        assert!(q.is_empty());
        let mut q2 = EventQueue::new();
        for (t, k, p) in entries {
            q2.push_keyed(t, k, p);
        }
        assert_eq!(q2.pop().unwrap().1, "a");
        assert_eq!(q2.pop().unwrap().1, "c");
        assert_eq!(q2.pop().unwrap().1, "b");
    }

    #[test]
    fn clear_releases_high_water_capacity() {
        let mut q = EventQueue::new();
        let n = EventQueue::<u64>::CLEAR_RETAIN_CAP * 4;
        for i in 0..n as u64 {
            q.push(SimTime::from_nanos(i), i);
        }
        assert!(q.capacity() >= n, "grew to the high-water mark");
        q.clear();
        assert!(q.is_empty());
        assert!(
            q.capacity() <= EventQueue::<u64>::CLEAR_RETAIN_CAP,
            "clear retained {} entries of capacity (cap {})",
            q.capacity(),
            EventQueue::<u64>::CLEAR_RETAIN_CAP,
        );
        // Still fully usable after the shrink.
        q.push(SimTime::from_nanos(1), 42);
        assert_eq!(q.pop().unwrap().1, 42);
    }

    #[test]
    fn heap_backend_clear_releases_capacity_too() {
        let mut q = EventQueue::heap_backed();
        let n = EventQueue::<u64>::CLEAR_RETAIN_CAP * 4;
        for i in 0..n as u64 {
            q.push(SimTime::from_nanos(i), i);
        }
        assert!(q.capacity() >= n);
        q.clear();
        assert!(q.capacity() <= EventQueue::<u64>::CLEAR_RETAIN_CAP);
    }

    #[test]
    fn with_capacity_behaves_like_new() {
        let mut q = EventQueue::with_capacity(64);
        assert!(q.is_empty());
        q.push(SimTime::from_nanos(2), "b");
        q.push(SimTime::from_nanos(1), "a");
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.pop().unwrap().1, "b");
    }

    #[test]
    fn interleaved_pops_and_same_time_pushes_order_by_key() {
        // Partial single-pop drain of a bucket, then more keyed pushes at
        // the same timestamp, including one that must pop *before* the
        // bucket's remaining entries.
        let t = SimTime::from_nanos(9);
        let mut q = EventQueue::new();
        q.push_keyed(t, 10, "k10");
        q.push_keyed(t, 30, "k30");
        q.push_keyed(t, 50, "k50");
        assert_eq!(q.pop().unwrap().1, "k10");
        q.push_keyed(t, 20, "k20"); // out of order vs. remaining {30, 50}
        q.push_keyed(t, 40, "k40");
        assert_eq!(q.pop().unwrap().1, "k20");
        assert_eq!(q.pop().unwrap().1, "k30");
        assert_eq!(q.pop().unwrap().1, "k40");
        assert_eq!(q.pop().unwrap().1, "k50");
        assert!(q.is_empty());
    }

    #[test]
    fn ops_counts_pushes_and_pops() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(1), 1);
        q.push(SimTime::from_nanos(1), 2);
        let _ = q.pop_batch_at(SimTime::from_nanos(1));
        assert_eq!(q.ops(), 4);
    }

    #[test]
    fn prio_queue_orders_by_prio_then_fifo() {
        let mut q = PrioQueue::new();
        q.push(0, "u1");
        q.push(i64::MIN + 1, "sys1");
        q.push(0, "u2");
        q.push(5, "low");
        q.push(i64::MIN + 1, "sys2");
        assert_eq!(q.len(), 5);
        assert_eq!(q.pop(), Some("sys1"));
        assert_eq!(q.pop(), Some("sys2"));
        assert_eq!(q.pop(), Some("u1"));
        assert_eq!(q.pop(), Some("u2"));
        assert_eq!(q.pop(), Some("low"));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn prio_queue_clear_then_reuse() {
        let mut q = PrioQueue::new();
        q.push(3, 1);
        q.push(-1, 2);
        q.clear();
        assert!(q.is_empty());
        q.push(7, 9);
        q.push(2, 8);
        assert_eq!(q.pop(), Some(8));
        assert_eq!(q.pop(), Some(9));
    }
}
