//! The discrete-event heap: a total order over (time, insertion sequence).

use crate::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A deterministic event queue.
///
/// Events with equal timestamps pop in insertion order, which — together
/// with seeded RNGs everywhere else — makes whole simulations replayable.
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    seq: u64,
}

struct Entry<T> {
    key: Reverse<(SimTime, u64)>,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

impl<T> EventQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// An empty queue with room for `cap` events before reallocating.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            seq: 0,
        }
    }

    /// Schedule `payload` at `time`.
    pub fn push(&mut self, time: SimTime, payload: T) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry {
            key: Reverse((time, seq)),
            payload,
        });
    }

    /// Schedule `payload` at `time` under a caller-supplied tie-break key.
    ///
    /// Same-time events pop in ascending `key` order. This is how the
    /// sharded engine keeps one global total order: keys are allocated from
    /// per-PE counters that advance identically whether the simulation runs
    /// on one thread or many, so `(time, key)` is mode-independent where
    /// the implicit insertion sequence is not. Keys must be unique among
    /// live entries; mixing `push` and `push_keyed` in one queue is allowed
    /// only if the caller keeps the two key spaces disjoint.
    pub fn push_keyed(&mut self, time: SimTime, key: u64, payload: T) {
        self.heap.push(Entry {
            key: Reverse((time, key)),
            payload,
        });
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        self.heap.pop().map(|e| (e.key.0 .0, e.payload))
    }

    /// Timestamp of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.key.0 .0)
    }

    /// Pop every event scheduled exactly at `t`, in insertion order.
    ///
    /// Equivalent to (and ordered identically to) repeated `pop` while the
    /// head's timestamp equals `t` — callers batch a whole timestep in one
    /// pass instead of re-peeking the heap per event. Events pushed at `t`
    /// *after* this call get later sequence numbers and surface in the next
    /// batch, exactly as they would have popped after the existing ties.
    pub fn pop_batch_at(&mut self, t: SimTime) -> Vec<T> {
        let mut out = Vec::new();
        self.pop_batch_at_into(t, &mut out);
        out
    }

    /// [`pop_batch_at`](Self::pop_batch_at) into a caller-owned buffer —
    /// the hot loop reuses one allocation across timesteps. Clears `out`
    /// first.
    pub fn pop_batch_at_into(&mut self, t: SimTime, out: &mut Vec<T>) {
        out.clear();
        while let Some(head) = self.heap.peek() {
            if head.key.0 .0 != t {
                break;
            }
            out.push(self.heap.pop().expect("peeked").payload);
        }
    }

    /// [`pop_batch_at_into`](Self::pop_batch_at_into), but each payload is
    /// paired with its tie-break sequence number so unprocessed entries can
    /// be [`restore`](Self::restore)d in exactly their original position.
    pub fn pop_batch_at_seq_into(&mut self, t: SimTime, out: &mut Vec<(u64, T)>) {
        out.clear();
        while let Some(head) = self.heap.peek() {
            if head.key.0 .0 != t {
                break;
            }
            let e = self.heap.pop().expect("peeked");
            out.push((e.key.0 .1, e.payload));
        }
    }

    /// Re-insert an entry obtained from
    /// [`pop_batch_at_seq_into`](Self::pop_batch_at_seq_into) under its
    /// original `(time, seq)` key, so it pops exactly where repeated
    /// [`pop`](Self::pop) would have placed it — ahead of any same-time
    /// event pushed since the batch was taken. The caller must only pass
    /// keys it popped (reusing a live key would break the total order).
    pub fn restore(&mut self, t: SimTime, seq: u64, payload: T) {
        self.heap.push(Entry {
            key: Reverse((t, seq)),
            payload,
        });
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Current allocated capacity of the underlying heap.
    pub fn capacity(&self) -> usize {
        self.heap.capacity()
    }

    /// Remove every pending entry with its `(time, key)` coordinates, in
    /// pop order. Used to partition a queue across shards; re-inserting the
    /// entries elsewhere with [`push_keyed`](Self::push_keyed) preserves the
    /// total order.
    pub fn drain_entries(&mut self) -> Vec<(SimTime, u64, T)> {
        let mut out = Vec::with_capacity(self.heap.len());
        while let Some(e) = self.heap.pop() {
            out.push((e.key.0 .0, e.key.0 .1, e.payload));
        }
        out
    }

    /// Capacity retained across [`clear`](Self::clear). Queues grow to the
    /// high-water mark of a run; anything beyond this cap is returned to
    /// the allocator on clear so long campaigns of many simulations don't
    /// pin peak memory forever.
    pub const CLEAR_RETAIN_CAP: usize = 1 << 12;

    /// Drop all pending events (used when a simulation is aborted) and
    /// reset the tie-break sequence, so a cleared queue is indistinguishable
    /// from a fresh one — reruns after an abort stay deterministic.
    ///
    /// Capacity above [`CLEAR_RETAIN_CAP`](Self::CLEAR_RETAIN_CAP) is
    /// released; a modest working buffer is kept so clear-then-refill
    /// cycles don't pay reallocation from zero.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.seq = 0;
        if self.heap.capacity() > Self::CLEAR_RETAIN_CAP {
            self.heap.shrink_to(Self::CLEAR_RETAIN_CAP);
        }
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(30), "c");
        q.push(SimTime::from_nanos(10), "a");
        q.push(SimTime::from_nanos(20), "b");
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(2), ());
        q.push(SimTime::from_millis(1), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(1)));
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_millis(1));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, 1);
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn clear_resets_sequence() {
        let mut q = EventQueue::new();
        for i in 0..5 {
            q.push(SimTime::from_nanos(1), i);
        }
        q.clear();
        // After clear, tie-breaking restarts from seq 0: a fresh queue and a
        // cleared queue order identical pushes identically.
        let t = SimTime::from_nanos(2);
        q.push(t, 10);
        q.push(t, 11);
        q.push(t, 12);
        assert_eq!(q.pop().unwrap().1, 10);
        assert_eq!(q.pop().unwrap().1, 11);
        assert_eq!(q.pop().unwrap().1, 12);
    }

    #[test]
    fn batch_pop_matches_repeated_pop_on_ties() {
        let t1 = SimTime::from_nanos(10);
        let t2 = SimTime::from_nanos(20);
        let mut q = EventQueue::new();
        let mut q2 = EventQueue::new();
        // Interleave pushes at two timestamps; ties must come out in
        // insertion order from both APIs.
        for i in 0..50 {
            let t = if i % 3 == 0 { t2 } else { t1 };
            q.push(t, i);
            q2.push(t, i);
        }
        let head = q.peek_time().unwrap();
        assert_eq!(head, t1);
        let batch = q.pop_batch_at(head);
        let mut expected = Vec::new();
        while q2.peek_time() == Some(head) {
            expected.push(q2.pop().unwrap().1);
        }
        assert_eq!(batch, expected);
        assert!(batch.windows(2).all(|w| w[0] < w[1]), "insertion order");
        // The later timestamp's events are untouched.
        assert_eq!(q.peek_time(), Some(t2));
        assert_eq!(q.len(), q2.len());
    }

    #[test]
    fn batch_pop_into_reuses_buffer_and_clears_it() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(7);
        q.push(t, 1);
        q.push(t, 2);
        q.push(SimTime::from_nanos(8), 3);
        let mut buf = vec![99, 98, 97];
        q.pop_batch_at_into(t, &mut buf);
        assert_eq!(buf, vec![1, 2]);
        // A batch at a timestamp with no events leaves an empty buffer.
        q.pop_batch_at_into(SimTime::from_nanos(9), &mut buf);
        assert!(buf.is_empty());
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    fn restore_puts_leftovers_ahead_of_newer_ties() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(4);
        q.push(t, "a");
        q.push(t, "b");
        let mut batch = Vec::new();
        q.pop_batch_at_seq_into(t, &mut batch);
        assert_eq!(batch.len(), 2);
        // "c" arrives at the same timestamp while the batch is out.
        q.push(t, "c");
        // Only "a" was processed; "b" goes back with its original seq and
        // must pop before "c", exactly as repeated pop() would have ordered.
        let (seq_b, b) = batch.remove(1);
        q.restore(t, seq_b, b);
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
    }

    #[test]
    fn keyed_pushes_order_ties_by_key_not_arrival() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        q.push_keyed(t, 30, "c");
        q.push_keyed(t, 10, "a");
        q.push_keyed(SimTime::from_nanos(4), 99, "first");
        q.push_keyed(t, 20, "b");
        assert_eq!(q.pop().unwrap().1, "first");
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
    }

    #[test]
    fn drain_entries_roundtrips_through_push_keyed() {
        let mut q = EventQueue::new();
        q.push_keyed(SimTime::from_nanos(2), 7, "b");
        q.push_keyed(SimTime::from_nanos(1), 9, "a");
        q.push_keyed(SimTime::from_nanos(2), 3, "c");
        let entries = q.drain_entries();
        assert!(q.is_empty());
        let mut q2 = EventQueue::new();
        for (t, k, p) in entries {
            q2.push_keyed(t, k, p);
        }
        assert_eq!(q2.pop().unwrap().1, "a");
        assert_eq!(q2.pop().unwrap().1, "c");
        assert_eq!(q2.pop().unwrap().1, "b");
    }

    #[test]
    fn clear_releases_high_water_capacity() {
        let mut q = EventQueue::new();
        let n = EventQueue::<u64>::CLEAR_RETAIN_CAP * 4;
        for i in 0..n as u64 {
            q.push(SimTime::from_nanos(i), i);
        }
        assert!(q.capacity() >= n, "grew to the high-water mark");
        q.clear();
        assert!(q.is_empty());
        assert!(
            q.capacity() <= EventQueue::<u64>::CLEAR_RETAIN_CAP,
            "clear retained {} entries of capacity (cap {})",
            q.capacity(),
            EventQueue::<u64>::CLEAR_RETAIN_CAP,
        );
        // Still fully usable after the shrink.
        q.push(SimTime::from_nanos(1), 42);
        assert_eq!(q.pop().unwrap().1, 42);
    }

    #[test]
    fn with_capacity_behaves_like_new() {
        let mut q = EventQueue::with_capacity(64);
        assert!(q.is_empty());
        q.push(SimTime::from_nanos(2), "b");
        q.push(SimTime::from_nanos(1), "a");
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.pop().unwrap().1, "b");
    }
}
