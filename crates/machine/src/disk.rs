//! Parallel-filesystem cost model for disk checkpoints (§III-B).

use crate::SimTime;

/// Cost model for checkpoint I/O to the parallel filesystem.
///
/// The filesystem has an aggregate bandwidth shared by all writers plus a
/// fixed per-operation latency; per-PE bandwidth is additionally capped (a
/// single writer cannot saturate the whole filesystem).
#[derive(Debug, Clone)]
pub struct DiskModel {
    /// Aggregate filesystem bandwidth, bytes/second.
    pub aggregate_bw: f64,
    /// Cap on one PE's streaming bandwidth, bytes/second.
    pub per_pe_bw: f64,
    /// Fixed open/metadata latency per file operation.
    pub op_latency: SimTime,
}

impl Default for DiskModel {
    fn default() -> Self {
        // A modest Lustre-like filesystem: 20 GB/s aggregate, 500 MB/s/PE.
        DiskModel {
            aggregate_bw: 20e9,
            per_pe_bw: 500e6,
            op_latency: SimTime::from_millis(2),
        }
    }
}

impl DiskModel {
    /// Time for `writers` PEs to each write `bytes_per_pe` concurrently.
    ///
    /// Effective per-PE bandwidth is min(per-PE cap, aggregate / writers).
    pub fn write_time(&self, writers: usize, bytes_per_pe: usize) -> SimTime {
        if writers == 0 || bytes_per_pe == 0 {
            return self.op_latency;
        }
        let share = self.aggregate_bw / writers as f64;
        let bw = self.per_pe_bw.min(share);
        self.op_latency + SimTime::from_secs_f64(bytes_per_pe as f64 / bw)
    }

    /// Time for `readers` PEs to each read `bytes_per_pe` concurrently
    /// (same model as writes).
    pub fn read_time(&self, readers: usize, bytes_per_pe: usize) -> SimTime {
        self.write_time(readers, bytes_per_pe)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_writers_share_bandwidth() {
        let d = DiskModel::default();
        let few = d.write_time(4, 1_000_000_000);
        let many = d.write_time(4000, 1_000_000_000);
        assert!(many > few);
    }

    #[test]
    fn per_pe_cap_binds_at_small_scale() {
        let d = DiskModel::default();
        // 1 writer: limited by per-PE bw, not aggregate.
        let t = d.write_time(1, 500_000_000);
        let expect = d.op_latency + SimTime::from_secs_f64(500e6 / 500e6);
        assert_eq!(t, expect);
    }

    #[test]
    fn zero_bytes_costs_only_latency() {
        let d = DiskModel::default();
        assert_eq!(d.write_time(10, 0), d.op_latency);
        assert_eq!(d.write_time(0, 10), d.op_latency);
    }

    #[test]
    fn read_equals_write_model() {
        let d = DiskModel::default();
        assert_eq!(d.read_time(64, 123_456), d.write_time(64, 123_456));
    }
}
