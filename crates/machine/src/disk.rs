//! Parallel-filesystem cost model for disk checkpoints (§III-B).

use crate::SimTime;

/// Cost model for checkpoint I/O to the parallel filesystem.
///
/// The filesystem has an aggregate bandwidth shared by all writers plus a
/// fixed per-operation latency; per-PE bandwidth is additionally capped (a
/// single writer cannot saturate the whole filesystem).
#[derive(Debug, Clone)]
pub struct DiskModel {
    /// Aggregate filesystem bandwidth, bytes/second.
    pub aggregate_bw: f64,
    /// Cap on one PE's streaming bandwidth, bytes/second.
    pub per_pe_bw: f64,
    /// Fixed open/metadata latency per file operation.
    pub op_latency: SimTime,
}

impl Default for DiskModel {
    fn default() -> Self {
        // A modest Lustre-like filesystem: 20 GB/s aggregate, 500 MB/s/PE.
        DiskModel {
            aggregate_bw: 20e9,
            per_pe_bw: 500e6,
            op_latency: SimTime::from_millis(2),
        }
    }
}

impl DiskModel {
    /// Time for `writers` PEs to each write `bytes_per_pe` concurrently.
    ///
    /// Effective per-PE bandwidth is min(per-PE cap, aggregate / writers).
    pub fn write_time(&self, writers: usize, bytes_per_pe: usize) -> SimTime {
        if writers == 0 || bytes_per_pe == 0 {
            return self.op_latency;
        }
        let share = self.aggregate_bw / writers as f64;
        let bw = self.per_pe_bw.min(share);
        self.op_latency + SimTime::from_secs_f64(bytes_per_pe as f64 / bw)
    }

    /// Time for `readers` PEs to each read `bytes_per_pe` concurrently
    /// (same model as writes).
    pub fn read_time(&self, readers: usize, bytes_per_pe: usize) -> SimTime {
        self.write_time(readers, bytes_per_pe)
    }
}

/// A storage fault to inject into a serialized checkpoint image.
///
/// Models the ways a checkpoint file goes bad on real systems: a writer
/// dying mid-stream (torn write), silent media corruption (bit flip), and
/// lost trailing data (truncation). `restore_from_disk` must reject every
/// one of these with a structured error rather than panicking or silently
/// restoring garbage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskFault {
    /// Drop everything past `keep_bytes` (file cut short).
    Truncate {
        /// Prefix length preserved.
        keep_bytes: usize,
    },
    /// Flip one bit: bit `bit` (0–7) of the byte at `offset`.
    BitFlip {
        /// Byte offset of the corrupted byte.
        offset: usize,
        /// Which bit of that byte flips.
        bit: u8,
    },
    /// A torn write: the tail from `from_byte` on was never persisted and
    /// reads back as zeroes (the file keeps its full length).
    TornWrite {
        /// First byte of the unpersisted tail.
        from_byte: usize,
    },
}

impl DiskFault {
    /// Apply the fault to a checkpoint image, returning the damaged bytes.
    /// Out-of-range offsets clamp to the image, so a fault built for a
    /// larger image still damages a smaller one.
    pub fn apply(&self, image: &[u8]) -> Vec<u8> {
        let mut out = image.to_vec();
        if out.is_empty() {
            return out;
        }
        match *self {
            DiskFault::Truncate { keep_bytes } => {
                out.truncate(keep_bytes.min(out.len().saturating_sub(1)));
            }
            DiskFault::BitFlip { offset, bit } => {
                let i = offset.min(out.len() - 1);
                out[i] ^= 1 << (bit % 8);
            }
            DiskFault::TornWrite { from_byte } => {
                let i = from_byte.min(out.len().saturating_sub(1));
                for b in &mut out[i..] {
                    *b = 0;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_writers_share_bandwidth() {
        let d = DiskModel::default();
        let few = d.write_time(4, 1_000_000_000);
        let many = d.write_time(4000, 1_000_000_000);
        assert!(many > few);
    }

    #[test]
    fn per_pe_cap_binds_at_small_scale() {
        let d = DiskModel::default();
        // 1 writer: limited by per-PE bw, not aggregate.
        let t = d.write_time(1, 500_000_000);
        let expect = d.op_latency + SimTime::from_secs_f64(500e6 / 500e6);
        assert_eq!(t, expect);
    }

    #[test]
    fn zero_bytes_costs_only_latency() {
        let d = DiskModel::default();
        assert_eq!(d.write_time(10, 0), d.op_latency);
        assert_eq!(d.write_time(0, 10), d.op_latency);
    }

    #[test]
    fn read_equals_write_model() {
        let d = DiskModel::default();
        assert_eq!(d.read_time(64, 123_456), d.write_time(64, 123_456));
    }

    #[test]
    fn disk_faults_damage_images() {
        let image: Vec<u8> = (0..64u8).collect();
        let t = DiskFault::Truncate { keep_bytes: 10 }.apply(&image);
        assert_eq!(t, &image[..10]);
        let b = DiskFault::BitFlip { offset: 5, bit: 3 }.apply(&image);
        assert_eq!(b.len(), image.len());
        assert_eq!(b[5], image[5] ^ 0b1000);
        assert_eq!(&b[..5], &image[..5]);
        let w = DiskFault::TornWrite { from_byte: 60 }.apply(&image);
        assert_eq!(w.len(), image.len());
        assert_eq!(&w[..60], &image[..60]);
        assert!(w[60..].iter().all(|&x| x == 0));
    }

    #[test]
    fn disk_faults_clamp_to_image() {
        let image = vec![0xFFu8; 8];
        // Offsets past the end damage the last byte / never grow the image.
        assert_eq!(DiskFault::Truncate { keep_bytes: 99 }.apply(&image).len(), 7);
        let b = DiskFault::BitFlip { offset: 99, bit: 0 }.apply(&image);
        assert_eq!(b[7], 0xFE);
        let w = DiskFault::TornWrite { from_byte: 99 }.apply(&image);
        assert_eq!(w[7], 0);
        assert!(DiskFault::BitFlip { offset: 0, bit: 0 }.apply(&[]).is_empty());
    }
}
