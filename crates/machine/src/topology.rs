//! N-dimensional torus coordinate math, shared by the network hop model and
//! by TRAM's virtual routing topology.

/// An N-dimensional torus over a linear rank space.
///
/// Ranks map to coordinates in row-major order (first dimension varies
/// fastest), matching the virtual topologies TRAM constructs (§III-F).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Torus {
    dims: Vec<usize>,
}

impl Torus {
    /// Build a torus with the given per-dimension extents.
    ///
    /// # Panics
    /// Panics if any extent is zero or the dimension list is empty.
    pub fn new(dims: Vec<usize>) -> Self {
        assert!(!dims.is_empty(), "torus needs at least one dimension");
        assert!(
            dims.iter().all(|&d| d > 0),
            "torus dimensions must be positive: {dims:?}"
        );
        Torus { dims }
    }

    /// Factor `n` ranks into a roughly balanced `ndims`-dimensional grid.
    ///
    /// The product of the returned extents is ≥ `n` (the grid may have
    /// unused slots when `n` has awkward factors); extents differ by at
    /// most one multiplicative rounding step.
    pub fn balanced(n: usize, ndims: usize) -> Self {
        assert!(n > 0 && ndims > 0);
        let mut dims = vec![1usize; ndims];
        // Repeatedly multiply the smallest extent until the grid covers n.
        let target = n as f64;
        let per_dim = target.powf(1.0 / ndims as f64).ceil() as usize;
        for d in dims.iter_mut() {
            *d = per_dim.max(1);
        }
        // Shrink greedily while staying ≥ n, for a tighter fit.
        loop {
            let mut shrunk = false;
            for i in 0..ndims {
                if dims[i] > 1 {
                    let product: usize = dims
                        .iter()
                        .enumerate()
                        .map(|(j, &d)| if j == i { d - 1 } else { d })
                        .product();
                    if product >= n {
                        dims[i] -= 1;
                        shrunk = true;
                    }
                }
            }
            if !shrunk {
                break;
            }
        }
        Torus::new(dims)
    }

    /// Factor `n` into exactly `ndims` extents whose product is **exactly**
    /// `n` (prime factors distributed to the currently-smallest extent).
    /// Needed when every grid slot must be a real rank — e.g. TRAM's
    /// routing topology, where an intermediate hop through a phantom slot
    /// would address a PE that does not exist.
    pub fn factored(n: usize, ndims: usize) -> Self {
        assert!(n > 0 && ndims > 0);
        let mut factors = Vec::new();
        let mut m = n;
        let mut d = 2usize;
        while d * d <= m {
            while m.is_multiple_of(d) {
                factors.push(d);
                m /= d;
            }
            d += 1;
        }
        if m > 1 {
            factors.push(m);
        }
        factors.sort_unstable_by(|a, b| b.cmp(a));
        let mut dims = vec![1usize; ndims];
        for f in factors {
            let smallest = (0..ndims)
                .min_by_key(|&i| dims[i])
                .expect("ndims >= 1");
            dims[smallest] *= f;
        }
        dims.sort_unstable_by(|a, b| b.cmp(a));
        Torus::new(dims)
    }

    /// Extents of each dimension.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of dimensions.
    pub fn ndims(&self) -> usize {
        self.dims.len()
    }

    /// Total number of slots in the torus.
    pub fn size(&self) -> usize {
        self.dims.iter().product()
    }

    /// Linear rank → coordinates (row-major, dim 0 fastest).
    pub fn coords(&self, rank: usize) -> Vec<usize> {
        debug_assert!(rank < self.size(), "rank {rank} outside torus");
        let mut c = Vec::with_capacity(self.dims.len());
        let mut r = rank;
        for &d in &self.dims {
            c.push(r % d);
            r /= d;
        }
        c
    }

    /// Coordinates → linear rank.
    pub fn rank(&self, coords: &[usize]) -> usize {
        debug_assert_eq!(coords.len(), self.dims.len());
        let mut r = 0usize;
        let mut stride = 1usize;
        for (c, d) in coords.iter().zip(&self.dims) {
            debug_assert!(c < d);
            r += c * stride;
            stride *= d;
        }
        r
    }

    /// Shortest per-dimension distance with wraparound.
    fn axis_dist(extent: usize, a: usize, b: usize) -> usize {
        let d = a.abs_diff(b);
        d.min(extent - d)
    }

    /// Minimal hop count between two ranks (sum of per-axis wrap distances).
    pub fn hops(&self, a: usize, b: usize) -> usize {
        let ca = self.coords(a);
        let cb = self.coords(b);
        ca.iter()
            .zip(cb.iter())
            .zip(&self.dims)
            .map(|((&x, &y), &d)| Self::axis_dist(d, x, y))
            .sum()
    }

    /// The next rank on a dimension-order route from `from` toward `to`:
    /// correct the lowest-numbered dimension that differs, moving one full
    /// axis at a time (TRAM routes whole axes per intermediate hop, so this
    /// returns the peer that matches `to` in that dimension).
    ///
    /// Returns `None` when `from == to`.
    pub fn route_next(&self, from: usize, to: usize) -> Option<usize> {
        if from == to {
            return None;
        }
        let mut c = self.coords(from);
        let ct = self.coords(to);
        for i in 0..c.len() {
            if c[i] != ct[i] {
                c[i] = ct[i];
                return Some(self.rank(&c));
            }
        }
        None
    }

    /// All peers of `rank`: every slot reachable by changing exactly one
    /// coordinate (TRAM's peer set, §III-F).
    pub fn peers(&self, rank: usize) -> Vec<usize> {
        let c = self.coords(rank);
        let mut out = Vec::new();
        for (i, &extent) in self.dims.iter().enumerate() {
            for v in 0..extent {
                if v != c[i] {
                    let mut c2 = c.clone();
                    c2[i] = v;
                    out.push(self.rank(&c2));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coords_rank_inverse() {
        let t = Torus::new(vec![4, 3, 2]);
        for r in 0..t.size() {
            assert_eq!(t.rank(&t.coords(r)), r);
        }
    }

    #[test]
    fn hops_with_wraparound() {
        let t = Torus::new(vec![8]);
        assert_eq!(t.hops(0, 1), 1);
        assert_eq!(t.hops(0, 7), 1); // wraps
        assert_eq!(t.hops(0, 4), 4);
        assert_eq!(t.hops(2, 2), 0);
    }

    #[test]
    fn hops_multi_dim() {
        let t = Torus::new(vec![4, 4]);
        // (0,0) to (2,3): 2 + 1(wrap) = 3
        let a = t.rank(&[0, 0]);
        let b = t.rank(&[2, 3]);
        assert_eq!(t.hops(a, b), 3);
    }

    #[test]
    fn balanced_covers_n() {
        for n in [1, 2, 7, 16, 100, 1024, 4097] {
            for nd in 1..=3 {
                let t = Torus::balanced(n, nd);
                assert!(t.size() >= n, "n={n} nd={nd} dims={:?}", t.dims());
                assert_eq!(t.ndims(), nd);
            }
        }
    }

    #[test]
    fn balanced_is_tight_for_perfect_powers() {
        assert_eq!(Torus::balanced(64, 2).size(), 64);
        assert_eq!(Torus::balanced(64, 3).size(), 64);
    }

    #[test]
    fn route_reaches_destination_in_at_most_ndims_steps() {
        let t = Torus::new(vec![5, 4, 3]);
        for from in 0..t.size() {
            for to in [0, 17, t.size() - 1] {
                let mut cur = from;
                let mut steps = 0;
                while let Some(next) = t.route_next(cur, to) {
                    cur = next;
                    steps += 1;
                    assert!(steps <= t.ndims(), "route too long");
                }
                assert_eq!(cur, to);
            }
        }
    }

    #[test]
    fn peers_count() {
        let t = Torus::new(vec![4, 3]);
        // peers = (4-1) + (3-1) = 5 for every rank
        for r in 0..t.size() {
            assert_eq!(t.peers(r).len(), 5);
        }
    }

    #[test]
    fn peers_are_one_axis_away() {
        let t = Torus::new(vec![4, 3, 2]);
        for p in t.peers(7) {
            let diff: usize = t
                .coords(7)
                .iter()
                .zip(t.coords(p).iter())
                .filter(|(a, b)| a != b)
                .count();
            assert_eq!(diff, 1);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_extent_rejected() {
        Torus::new(vec![4, 0]);
    }

    #[test]
    fn factored_is_exact() {
        for n in [1, 2, 7, 8, 12, 16, 27, 97, 100, 1024, 4096] {
            for nd in 1..=3 {
                let t = Torus::factored(n, nd);
                assert_eq!(t.size(), n, "n={n} nd={nd} dims={:?}", t.dims());
            }
        }
    }

    #[test]
    fn factored_routes_stay_in_bounds() {
        let t = Torus::factored(8, 2);
        for from in 0..8 {
            for to in 0..8 {
                let mut cur = from;
                while let Some(next) = t.route_next(cur, to) {
                    assert!(next < 8, "route through phantom slot {next}");
                    cur = next;
                }
            }
        }
    }

    #[test]
    fn factored_prime_degenerates_to_1d_ish() {
        let t = Torus::factored(7, 2);
        assert_eq!(t.size(), 7);
        assert!(t.dims().contains(&7));
    }
}
