//! Per-PE execution speed: static heterogeneity plus timed interference.
//!
//! Models the two cloud effects from §IV-F: *static* heterogeneity
//! (different physical nodes under the VMs) and *dynamic* heterogeneity
//! (interfering VMs sharing a node for a window of time).

use crate::SimTime;

/// A span of time during which a range of PEs runs slower, as when another
/// tenant's VM lands on the same physical host.
#[derive(Debug, Clone, PartialEq)]
pub struct InterferenceWindow {
    /// First PE affected.
    pub first_pe: usize,
    /// Number of consecutive PEs affected.
    pub num_pes: usize,
    /// Window start (inclusive).
    pub start: SimTime,
    /// Window end (exclusive); `SimTime::MAX` = never ends.
    pub end: SimTime,
    /// Multiplier applied to the PE's speed while active (e.g. 0.5).
    pub speed_factor: f64,
}

impl InterferenceWindow {
    fn applies(&self, pe: usize, now: SimTime) -> bool {
        pe >= self.first_pe
            && pe < self.first_pe + self.num_pes
            && now >= self.start
            && now < self.end
    }
}

/// The speed model: static per-PE factors and a list of interference
/// windows. Effective speed = static × ∏ active interference factors.
#[derive(Debug, Clone, Default)]
pub struct SpeedModel {
    static_speed: Vec<f64>,
    interference: Vec<InterferenceWindow>,
}

impl SpeedModel {
    /// All PEs at speed 1.0.
    pub fn uniform(num_pes: usize) -> Self {
        SpeedModel {
            static_speed: vec![1.0; num_pes],
            interference: Vec::new(),
        }
    }

    /// Explicit static speeds (one per PE).
    pub fn heterogeneous(speeds: Vec<f64>) -> Self {
        assert!(speeds.iter().all(|&s| s > 0.0), "speeds must be positive");
        SpeedModel {
            static_speed: speeds,
            interference: Vec::new(),
        }
    }

    /// Slow a contiguous block of PEs to `factor` permanently (the paper's
    /// Grid'5000 setup makes one node 0.7×).
    pub fn slow_block(mut self, first_pe: usize, num_pes: usize, factor: f64) -> Self {
        for pe in first_pe..(first_pe + num_pes).min(self.static_speed.len()) {
            self.static_speed[pe] *= factor;
        }
        self
    }

    /// Add a timed interference window.
    pub fn with_interference(mut self, w: InterferenceWindow) -> Self {
        self.interference.push(w);
        self
    }

    /// Static (time-independent) speed of a PE.
    pub fn static_speed(&self, pe: usize) -> f64 {
        self.static_speed.get(pe).copied().unwrap_or(1.0)
    }

    /// Effective speed of `pe` at time `now`, excluding DVFS (the runtime
    /// multiplies in the chip frequency factor separately).
    pub fn speed_at(&self, pe: usize, now: SimTime) -> f64 {
        let mut s = self.static_speed(pe);
        for w in &self.interference {
            if w.applies(pe, now) {
                s *= w.speed_factor;
            }
        }
        s
    }

    /// Earliest time strictly after `now` at which some window affecting
    /// `pe` starts or ends (so the runtime can split executions spanning a
    /// speed change). `None` if the speed never changes again.
    pub fn next_change_after(&self, pe: usize, now: SimTime) -> Option<SimTime> {
        self.interference
            .iter()
            .filter(|w| pe >= w.first_pe && pe < w.first_pe + w.num_pes)
            .flat_map(|w| [w.start, w.end])
            .filter(|&t| t > now && t != SimTime::MAX)
            .min()
    }

    /// Grow or shrink to `num_pes` (new PEs get speed 1.0).
    pub fn resize(&mut self, num_pes: usize) {
        self.static_speed.resize(num_pes, 1.0);
    }

    /// Number of PEs described.
    pub fn len(&self) -> usize {
        self.static_speed.len()
    }

    /// True when no PEs are described.
    pub fn is_empty(&self) -> bool {
        self.static_speed.is_empty()
    }

    /// The configured interference windows.
    pub fn interference_windows(&self) -> &[InterferenceWindow] {
        &self.interference
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_speed_is_one() {
        let m = SpeedModel::uniform(4);
        assert_eq!(m.speed_at(2, SimTime::from_secs(5)), 1.0);
    }

    #[test]
    fn slow_block_applies_statistically() {
        let m = SpeedModel::uniform(8).slow_block(4, 2, 0.7);
        assert_eq!(m.speed_at(3, SimTime::ZERO), 1.0);
        assert!((m.speed_at(4, SimTime::ZERO) - 0.7).abs() < 1e-12);
        assert!((m.speed_at(5, SimTime::ZERO) - 0.7).abs() < 1e-12);
        assert_eq!(m.speed_at(6, SimTime::ZERO), 1.0);
    }

    #[test]
    fn interference_window_times() {
        let m = SpeedModel::uniform(4).with_interference(InterferenceWindow {
            first_pe: 1,
            num_pes: 1,
            start: SimTime::from_secs(10),
            end: SimTime::from_secs(20),
            speed_factor: 0.5,
        });
        assert_eq!(m.speed_at(1, SimTime::from_secs(9)), 1.0);
        assert_eq!(m.speed_at(1, SimTime::from_secs(10)), 0.5);
        assert_eq!(m.speed_at(1, SimTime::from_secs(19)), 0.5);
        assert_eq!(m.speed_at(1, SimTime::from_secs(20)), 1.0);
        assert_eq!(m.speed_at(0, SimTime::from_secs(15)), 1.0);
    }

    #[test]
    fn windows_compose_multiplicatively() {
        let w = |f: f64| InterferenceWindow {
            first_pe: 0,
            num_pes: 1,
            start: SimTime::ZERO,
            end: SimTime::MAX,
            speed_factor: f,
        };
        let m = SpeedModel::uniform(1)
            .with_interference(w(0.5))
            .with_interference(w(0.5));
        assert!((m.speed_at(0, SimTime::from_secs(1)) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn next_change_after_finds_boundaries() {
        let m = SpeedModel::uniform(2).with_interference(InterferenceWindow {
            first_pe: 0,
            num_pes: 1,
            start: SimTime::from_secs(5),
            end: SimTime::from_secs(8),
            speed_factor: 0.5,
        });
        assert_eq!(
            m.next_change_after(0, SimTime::ZERO),
            Some(SimTime::from_secs(5))
        );
        assert_eq!(
            m.next_change_after(0, SimTime::from_secs(5)),
            Some(SimTime::from_secs(8))
        );
        assert_eq!(m.next_change_after(0, SimTime::from_secs(8)), None);
        assert_eq!(m.next_change_after(1, SimTime::ZERO), None);
    }

    #[test]
    fn resize_preserves_and_extends() {
        let mut m = SpeedModel::heterogeneous(vec![0.5, 2.0]);
        m.resize(4);
        assert_eq!(m.static_speed(0), 0.5);
        assert_eq!(m.static_speed(3), 1.0);
        assert_eq!(m.len(), 4);
    }
}
