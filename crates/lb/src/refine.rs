//! RefineLB: incremental rebalancing with few migrations.

use crate::{current_pe_loads, scaled};
use charm_core::{LbStats, Strategy};

/// Moves objects *off overloaded PEs only*, one at a time, until every PE is
/// within `threshold` of the average — the strategy of choice when the
/// imbalance is mild and migration volume matters (Charm++ RefineLB).
#[derive(Debug, Clone, Copy)]
pub struct RefineLb {
    /// Target ceiling as a multiple of the average load (default 1.05).
    pub threshold: f64,
    /// Safety cap on moves per invocation.
    pub max_moves: usize,
}

impl Default for RefineLb {
    fn default() -> Self {
        RefineLb {
            threshold: 1.05,
            max_moves: usize::MAX,
        }
    }
}

impl Strategy for RefineLb {
    fn name(&self) -> &'static str {
        "RefineLB"
    }

    fn assign(&mut self, stats: &LbStats) -> Vec<Option<usize>> {
        let n = stats.objs.len();
        let mut out = vec![None; n];
        if stats.num_pes < 2 || n == 0 {
            return out;
        }
        let mut pe_load = current_pe_loads(stats);
        let avg: f64 = pe_load.iter().sum::<f64>() / stats.num_pes as f64;
        let ceiling = avg * self.threshold;

        // Objects grouped by current PE, heaviest first.
        let mut by_pe: Vec<Vec<usize>> = vec![Vec::new(); stats.num_pes];
        for (i, o) in stats.objs.iter().enumerate() {
            by_pe[o.pe].push(i);
        }
        for v in &mut by_pe {
            v.sort_by(|&a, &b| {
                stats.objs[b]
                    .load
                    .total_cmp(&stats.objs[a].load)
                    .then_with(|| a.cmp(&b))
            });
        }

        let mut moves = 0usize;
        // Donors scanned from most overloaded; recipients chosen lightest.
        loop {
            if moves >= self.max_moves {
                break;
            }
            let donor = (0..stats.num_pes)
                .max_by(|&a, &b| pe_load[a].total_cmp(&pe_load[b]).then_with(|| b.cmp(&a)))
                .expect("at least one PE");
            if pe_load[donor] <= ceiling {
                break; // everyone within threshold
            }
            // Pick the largest object on the donor that fits under the
            // ceiling on the lightest recipient without overshooting it.
            let recipient = (0..stats.num_pes)
                .min_by(|&a, &b| pe_load[a].total_cmp(&pe_load[b]).then_with(|| a.cmp(&b)))
                .expect("at least one PE");
            let overshoot = pe_load[donor] - avg;
            let mut chosen: Option<usize> = None;
            for &i in &by_pe[donor] {
                if out[i].is_some() {
                    continue;
                }
                let l = scaled(stats.objs[i].load, stats.pe_speed[recipient]);
                if l <= overshoot || chosen.is_none() {
                    // Prefer the largest object not exceeding the overshoot;
                    // fall back to the largest remaining.
                    if l <= overshoot {
                        chosen = Some(i);
                        break;
                    }
                    if chosen.is_none() {
                        chosen = Some(i);
                    }
                }
            }
            let Some(i) = chosen else { break };
            let src_scaled = scaled(stats.objs[i].load, stats.pe_speed[donor]);
            let dst_scaled = scaled(stats.objs[i].load, stats.pe_speed[recipient]);
            // Give up if the move would make things worse.
            if pe_load[recipient] + dst_scaled >= pe_load[donor] {
                break;
            }
            pe_load[donor] -= src_scaled;
            pe_load[recipient] += dst_scaled;
            out[i] = Some(recipient);
            // Remove from donor's candidate list lazily (skipped via out[i]).
            moves += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{check, skewed_stats};
    use charm_core::lbframework::synthetic_stats;

    #[test]
    fn refine_reduces_imbalance() {
        let stats = skewed_stats(8, 200);
        let (before, after) = check(&mut RefineLb::default(), &stats);
        assert!(after <= before + 1e-9, "never worse: {before} -> {after}");
        assert!(after < 1.25, "meaningfully balanced: {after}");
    }

    #[test]
    fn refine_moves_less_than_greedy() {
        let stats = skewed_stats(8, 200);
        let refine_moves = RefineLb::default()
            .assign(&stats)
            .iter()
            .flatten()
            .count();
        let greedy_moves = crate::GreedyLb.assign(&stats).iter().flatten().count();
        assert!(
            refine_moves < greedy_moves,
            "refine={refine_moves} greedy={greedy_moves}"
        );
    }

    #[test]
    fn refine_noop_when_balanced() {
        let stats = synthetic_stats(4, &[1.0; 16]); // perfectly balanced round robin
        let a = RefineLb::default().assign(&stats);
        assert_eq!(a.iter().flatten().count(), 0);
    }

    #[test]
    fn refine_respects_move_cap() {
        let stats = skewed_stats(8, 200);
        let a = RefineLb {
            threshold: 1.0,
            max_moves: 3,
        }
        .assign(&stats);
        assert!(a.iter().flatten().count() <= 3);
    }

    #[test]
    fn refine_handles_single_pe() {
        let stats = skewed_stats(1, 10);
        let a = RefineLb::default().assign(&stats);
        assert!(a.iter().all(|x| x.is_none()));
    }
}
