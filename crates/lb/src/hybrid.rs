//! HybridLB: hierarchical balancing for large machines.

use crate::scaled;
use charm_core::{LbStats, ObjStat, Strategy};

/// Two-level hierarchical balancer (Charm++ HybridLB): PEs are grouped; a
/// coarse top level moves load *between groups* by migrating the largest
/// objects of overloaded groups, then a greedy pass balances *within* each
/// group. The paper credits HybridLB with ≥40 % improvement for LeanMD at
/// scale (Fig. 9) because the centralized strategies stop scaling.
#[derive(Debug, Clone, Copy)]
#[derive(Default)]
pub struct HybridLb {
    /// PEs per first-level group (0 = pick √P automatically).
    pub group_size: usize,
}


impl HybridLb {
    fn groups(&self, num_pes: usize) -> (usize, usize) {
        let g = if self.group_size == 0 {
            ((num_pes as f64).sqrt().ceil() as usize).max(1)
        } else {
            self.group_size
        };
        (g, num_pes.div_ceil(g))
    }
}

impl Strategy for HybridLb {
    fn name(&self) -> &'static str {
        "HybridLB"
    }

    fn assign(&mut self, stats: &LbStats) -> Vec<Option<usize>> {
        let n = stats.objs.len();
        let mut out = vec![None; n];
        if stats.num_pes < 2 || n == 0 {
            return out;
        }
        let (gsize, ngroups) = self.groups(stats.num_pes);
        let group_of = |pe: usize| pe / gsize;

        // ---- level 2: balance load across groups ---------------------------
        // Group capacity = sum of member speeds; target share ∝ capacity.
        let mut cap = vec![0.0f64; ngroups];
        for pe in 0..stats.num_pes {
            cap[group_of(pe)] += stats.pe_speed[pe];
        }
        let total_load: f64 = stats.objs.iter().map(|o| o.load).sum();
        let total_cap: f64 = cap.iter().sum();
        let target: Vec<f64> = cap.iter().map(|c| total_load * c / total_cap).collect();

        let mut gload = vec![0.0f64; ngroups];
        let mut obj_group: Vec<usize> = stats.objs.iter().map(|o| group_of(o.pe)).collect();
        for (o, &g) in stats.objs.iter().zip(&obj_group) {
            gload[g] += o.load;
        }

        // Largest objects first, move from over-target to most-under-target.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            stats.objs[b]
                .load
                .total_cmp(&stats.objs[a].load)
                .then_with(|| a.cmp(&b))
        });
        for &i in &order {
            let g = obj_group[i];
            if gload[g] <= target[g] * 1.02 {
                continue;
            }
            let dest = (0..ngroups)
                .min_by(|&a, &b| {
                    (gload[a] / target[a].max(1e-12))
                        .total_cmp(&(gload[b] / target[b].max(1e-12)))
                        .then_with(|| a.cmp(&b))
                })
                .expect("ngroups >= 1");
            if dest == g {
                continue;
            }
            let l = stats.objs[i].load;
            if gload[dest] + l > target[dest] * 1.05 {
                continue; // would overfill the destination group
            }
            gload[g] -= l;
            gload[dest] += l;
            obj_group[i] = dest;
        }

        // ---- level 1: greedy within each group ------------------------------
        for g in 0..ngroups {
            let pes: Vec<usize> = (g * gsize..((g + 1) * gsize).min(stats.num_pes)).collect();
            if pes.is_empty() {
                continue;
            }
            let members: Vec<usize> = (0..n).filter(|&i| obj_group[i] == g).collect();
            let mut pe_load: Vec<f64> = pes
                .iter()
                .map(|&pe| stats.bg_load.get(pe).copied().unwrap_or(0.0))
                .collect();
            let mut morder = members.clone();
            morder.sort_by(|&a, &b| {
                stats.objs[b]
                    .load
                    .total_cmp(&stats.objs[a].load)
                    .then_with(|| a.cmp(&b))
            });
            for i in morder {
                let obj: &ObjStat = &stats.objs[i];
                let k = (0..pes.len())
                    .min_by(|&a, &b| pe_load[a].total_cmp(&pe_load[b]).then_with(|| a.cmp(&b)))
                    .expect("non-empty group");
                pe_load[k] += scaled(obj.load, stats.pe_speed[pes[k]]);
                if pes[k] != obj.pe {
                    out[i] = Some(pes[k]);
                }
            }
        }
        out
    }

    fn decision_cost(&self, num_objs: usize, num_pes: usize) -> f64 {
        // Hierarchical: each level sorts its own partition — cheaper than a
        // flat centralized pass at scale.
        let n = num_objs.max(2) as f64;
        let (gsize, _) = self.groups(num_pes.max(1));
        10.0 * n * (n / gsize.max(1) as f64).max(2.0).log2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{check, skewed_stats};

    #[test]
    fn hybrid_balances_like_greedy_at_modest_scale() {
        let stats = skewed_stats(16, 512);
        let (before, after) = check(&mut HybridLb::default(), &stats);
        assert!(before > 1.05);
        assert!(after < 1.15, "hybrid should balance well: {after}");
    }

    #[test]
    fn hybrid_cheaper_decision_than_greedy_at_scale() {
        let h = HybridLb::default();
        let g = charm_core::lbframework::NullLb; // baseline zero
        let _ = g;
        let flat = crate::GreedyLb.decision_cost(1_000_000, 65536);
        let hier = h.decision_cost(1_000_000, 65536);
        assert!(hier < flat, "hier={hier} flat={flat}");
    }

    #[test]
    fn explicit_group_size_respected() {
        let stats = skewed_stats(12, 100);
        let (_, after) = check(&mut HybridLb { group_size: 4 }, &stats);
        assert!(after < 1.3);
    }

    #[test]
    fn hybrid_single_pe_noop() {
        let stats = skewed_stats(1, 10);
        let a = HybridLb::default().assign(&stats);
        assert!(a.iter().all(|x| x.is_none()));
    }

    #[test]
    fn hybrid_deterministic() {
        let stats = skewed_stats(32, 800);
        assert_eq!(
            HybridLb::default().assign(&stats),
            HybridLb::default().assign(&stats)
        );
    }
}
