//! RotateLB: migrate everything one PE over — a migration stress test.

use charm_core::{LbStats, Strategy};

/// Moves every object from PE *p* to PE *p+1 (mod P)*. Useless for balance,
/// priceless for exercising migration paths, location-cache invalidation,
/// and forwarding (Charm++ ships the same strategy for the same reason).
#[derive(Debug, Default, Clone, Copy)]
pub struct RotateLb;

impl Strategy for RotateLb {
    fn name(&self) -> &'static str {
        "RotateLB"
    }

    fn assign(&mut self, stats: &LbStats) -> Vec<Option<usize>> {
        stats
            .objs
            .iter()
            .map(|o| Some((o.pe + 1) % stats.num_pes))
            .collect()
    }

    fn decision_cost(&self, _num_objs: usize, _num_pes: usize) -> f64 {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use charm_core::lbframework::synthetic_stats;

    #[test]
    fn rotate_moves_everything() {
        let stats = synthetic_stats(4, &[1.0; 12]);
        let a = RotateLb.assign(&stats);
        assert_eq!(a.iter().flatten().count(), 12);
        for (o, x) in stats.objs.iter().zip(&a) {
            assert_eq!(x.unwrap(), (o.pe + 1) % 4);
        }
    }

    #[test]
    fn rotate_on_one_pe_is_identity_assignment() {
        let stats = synthetic_stats(1, &[1.0; 3]);
        let a = RotateLb.assign(&stats);
        // (p+1) % 1 == p == 0: "moves" map back to the same PE.
        assert!(a.iter().all(|x| *x == Some(0)));
    }
}
