//! GreedyLB and its communication-aware variant.

use crate::scaled;
use charm_core::{LbStats, ObjId, Strategy};
use std::collections::{BinaryHeap, HashMap};

/// Centralized greedy balancer: objects descending by load, each placed on
/// the PE that will finish soonest (classic LPT / Charm++ GreedyLB).
///
/// Ignores current placement entirely, so it produces near-perfect balance
/// at the price of many migrations.
#[derive(Debug, Default, Clone, Copy)]
pub struct GreedyLb;

#[derive(PartialEq)]
struct PeEntry {
    load: f64,
    pe: usize,
}
impl Eq for PeEntry {}
impl PartialOrd for PeEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PeEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap by (load, pe); total order despite f64 via total_cmp.
        other
            .load
            .total_cmp(&self.load)
            .then_with(|| other.pe.cmp(&self.pe))
    }
}

impl Strategy for GreedyLb {
    fn name(&self) -> &'static str {
        "GreedyLB"
    }

    fn assign(&mut self, stats: &LbStats) -> Vec<Option<usize>> {
        // Objects by descending load; index order breaks ties for determinism.
        let mut order: Vec<usize> = (0..stats.objs.len()).collect();
        order.sort_by(|&a, &b| {
            stats.objs[b]
                .load
                .total_cmp(&stats.objs[a].load)
                .then_with(|| a.cmp(&b))
        });
        let mut out = vec![None; stats.objs.len()];

        let uniform_speed = stats
            .pe_speed
            .windows(2)
            .all(|w| (w[0] - w[1]).abs() < 1e-12);

        if uniform_speed {
            // Homogeneous: min-heap on accumulated load, O(n log P).
            let mut heap: BinaryHeap<PeEntry> = (0..stats.num_pes)
                .map(|pe| PeEntry {
                    load: stats.bg_load.get(pe).copied().unwrap_or(0.0),
                    pe,
                })
                .collect();
            for i in order {
                let mut top = heap.pop().expect("num_pes >= 1");
                let obj = &stats.objs[i];
                top.load += scaled(obj.load, stats.pe_speed[top.pe]);
                if top.pe != obj.pe {
                    out[i] = Some(top.pe);
                }
                heap.push(top);
            }
        } else {
            // Heterogeneous: the PE finishing soonest depends on its speed,
            // so minimize load-after-placement exactly (O(n·P); the paper's
            // heterogeneous scenarios are all small machines).
            let mut pe_load: Vec<f64> = (0..stats.num_pes)
                .map(|pe| stats.bg_load.get(pe).copied().unwrap_or(0.0))
                .collect();
            for i in order {
                let obj = &stats.objs[i];
                let best = (0..stats.num_pes)
                    .min_by(|&a, &b| {
                        let la = pe_load[a] + scaled(obj.load, stats.pe_speed[a]);
                        let lb = pe_load[b] + scaled(obj.load, stats.pe_speed[b]);
                        la.total_cmp(&lb).then_with(|| a.cmp(&b))
                    })
                    .expect("num_pes >= 1");
                pe_load[best] += scaled(obj.load, stats.pe_speed[best]);
                if best != obj.pe {
                    out[i] = Some(best);
                }
            }
        }
        out
    }
}

/// Greedy balancing with a communication bonus: placing an object on a PE
/// that already hosts its heaviest communication partners discounts its
/// perceived cost, trading some compute balance for locality.
#[derive(Debug, Clone, Copy)]
pub struct GreedyCommLb {
    /// Seconds of load discounted per byte of co-located communication.
    pub affinity_per_byte: f64,
}

impl Default for GreedyCommLb {
    fn default() -> Self {
        GreedyCommLb {
            // Roughly a gigabit of comm ≈ one second of saved effective load.
            affinity_per_byte: 1.0 / 125e6,
        }
    }
}

impl Strategy for GreedyCommLb {
    fn name(&self) -> &'static str {
        "GreedyCommLB"
    }

    fn assign(&mut self, stats: &LbStats) -> Vec<Option<usize>> {
        // Build the per-object neighbor lists once.
        let index_of: HashMap<ObjId, usize> = stats
            .objs
            .iter()
            .enumerate()
            .map(|(i, o)| (o.id, i))
            .collect();
        let mut neighbors: Vec<Vec<(usize, u64)>> = vec![Vec::new(); stats.objs.len()];
        for (a, b, bytes) in &stats.comm {
            if let (Some(&ia), Some(&ib)) = (index_of.get(a), index_of.get(b)) {
                neighbors[ia].push((ib, *bytes));
                neighbors[ib].push((ia, *bytes));
            }
        }

        let mut pe_load: Vec<f64> = (0..stats.num_pes)
            .map(|pe| stats.bg_load.get(pe).copied().unwrap_or(0.0))
            .collect();
        let mut placement: Vec<Option<usize>> = vec![None; stats.objs.len()];

        let mut order: Vec<usize> = (0..stats.objs.len()).collect();
        order.sort_by(|&a, &b| {
            stats.objs[b]
                .load
                .total_cmp(&stats.objs[a].load)
                .then_with(|| a.cmp(&b))
        });

        let mut out = vec![None; stats.objs.len()];
        for i in order {
            let obj = &stats.objs[i];
            // Affinity credit per PE from already-placed neighbors.
            let mut credit: HashMap<usize, f64> = HashMap::new();
            for &(nb, bytes) in &neighbors[i] {
                if let Some(pe) = placement[nb] {
                    *credit.entry(pe).or_default() += bytes as f64 * self.affinity_per_byte;
                }
            }
            let mut best_pe = 0usize;
            let mut best_cost = f64::INFINITY;
            for (pe, load) in pe_load.iter().enumerate() {
                let cost = load + scaled(obj.load, stats.pe_speed[pe])
                    - credit.get(&pe).copied().unwrap_or(0.0);
                if cost < best_cost {
                    best_cost = cost;
                    best_pe = pe;
                }
            }
            pe_load[best_pe] += scaled(obj.load, stats.pe_speed[best_pe]);
            placement[i] = Some(best_pe);
            if best_pe != obj.pe {
                out[i] = Some(best_pe);
            }
        }
        out
    }

    fn decision_cost(&self, num_objs: usize, num_pes: usize) -> f64 {
        // O(n·P) scan per object.
        20.0 * num_objs as f64 * num_pes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{check, skewed_stats};
    use charm_core::lbframework::synthetic_stats;

    #[test]
    fn greedy_balances_skewed_load() {
        let stats = skewed_stats(8, 256);
        let (before, after) = check(&mut GreedyLb, &stats);
        assert!(before > 1.05, "fixture must start imbalanced: {before}");
        assert!(after < 1.05, "greedy should nearly equalize: {after}");
    }

    #[test]
    fn greedy_respects_pe_speeds() {
        let mut stats = synthetic_stats(2, &[1.0; 10]);
        stats.pe_speed = vec![1.0, 3.0];
        let mut lb = GreedyLb;
        let a = lb.assign(&stats);
        let placement: Vec<usize> = stats
            .objs
            .iter()
            .zip(&a)
            .map(|(o, x)| x.unwrap_or(o.pe))
            .collect();
        let fast = placement.iter().filter(|&&p| p == 1).count();
        let slow = placement.len() - fast;
        assert!(
            fast > 2 * slow,
            "fast PE should take ~3x the objects: fast={fast} slow={slow}"
        );
    }

    #[test]
    fn greedy_on_single_pe_is_noop() {
        let stats = skewed_stats(1, 16);
        let a = GreedyLb.assign(&stats);
        assert!(a.iter().all(|x| x.is_none()));
    }

    #[test]
    fn greedy_deterministic() {
        let stats = skewed_stats(16, 500);
        assert_eq!(GreedyLb.assign(&stats), GreedyLb.assign(&stats));
    }

    #[test]
    fn comm_aware_colocates_heavy_pairs() {
        // Two chatty objects and two loners, two PEs; everything equal load.
        let mut stats = synthetic_stats(2, &[1.0, 1.0, 1.0, 1.0]);
        stats.comm = vec![(stats.objs[0].id, stats.objs[2].id, 1_000_000_000)];
        let mut lb = GreedyCommLb::default();
        let a = lb.assign(&stats);
        let placement: Vec<usize> = stats
            .objs
            .iter()
            .zip(&a)
            .map(|(o, x)| x.unwrap_or(o.pe))
            .collect();
        assert_eq!(
            placement[0], placement[2],
            "heavily communicating pair should share a PE: {placement:?}"
        );
    }

    #[test]
    fn comm_aware_still_balances_without_comm() {
        let stats = skewed_stats(8, 128);
        let (before, after) = check(&mut GreedyCommLb::default(), &stats);
        assert!(after < before);
        assert!(after < 1.1);
    }
}
