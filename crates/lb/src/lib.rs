//! # charm-lb — load-balancing strategies (paper §III-A)
//!
//! "C HARM ++ provides a mature load balancing framework with a suite of
//! load balancing strategies comprising of various centralized, distributed
//! and hierarchical schemes." This crate is that suite:
//!
//! | strategy | kind | paper use |
//! |---|---|---|
//! | [`GreedyLb`] | centralized | general-purpose rebalance |
//! | [`RefineLb`] | centralized, incremental | low-migration touch-ups |
//! | [`HybridLb`] | hierarchical | LeanMD at scale (Fig. 9: "use of scalable hierarchical load balancer, HybridLB, improves the performance by at least 40%") |
//! | [`DistributedLb`] | fully distributed, gossip-style (paper ref 30) | AMR3D (Fig. 8: 40% at 128K PEs) |
//! | [`OrbLb`] | geometric (orthogonal recursive bisection) | Barnes-Hut (Fig. 12) |
//! | [`GreedyCommLb`] | centralized, communication-aware | comm-heavy workloads |
//! | [`RotateLb`] | test strategy | migration stress tests |
//!
//! Every strategy receives PE *speeds* along with loads, which is how the
//! temperature scheme's frequency-scaled balancing (§III-C) and the cloud
//! scenarios' heterogeneity awareness (§IV-F) fall out for free.

mod distributed;
mod greedy;
mod hybrid;
mod orb;
mod refine;
mod rotate;

pub use distributed::DistributedLb;
pub use greedy::{GreedyCommLb, GreedyLb};
pub use hybrid::HybridLb;
pub use orb::OrbLb;
pub use refine::RefineLb;
pub use rotate::RotateLb;

use charm_core::LbStats;

/// Scaled load of one object on a given PE: seconds it will take there.
#[inline]
pub(crate) fn scaled(load: f64, speed: f64) -> f64 {
    load / speed.max(1e-12)
}

/// Current per-PE scaled loads (objects + background) under `stats`' present
/// placement.
pub(crate) fn current_pe_loads(stats: &LbStats) -> Vec<f64> {
    stats.pe_loads()
}

/// Verify an assignment vector is sane for the given stats (used by tests
/// and debug assertions): in-range PEs, one entry per object.
pub fn validate_assignment(stats: &LbStats, assignment: &[Option<usize>]) {
    assert_eq!(assignment.len(), stats.objs.len(), "length mismatch");
    for a in assignment.iter().flatten() {
        assert!(*a < stats.num_pes, "PE {a} out of range");
    }
}

/// Makespan (max scaled PE load, seconds) after applying `assignment`.
pub fn post_makespan(stats: &LbStats, assignment: &[Option<usize>]) -> f64 {
    let mut pe_load = stats.bg_load.clone();
    pe_load.resize(stats.num_pes, 0.0);
    for (o, a) in stats.objs.iter().zip(assignment) {
        let pe = a.unwrap_or(o.pe);
        pe_load[pe] += scaled(o.load, stats.pe_speed[pe]);
    }
    pe_load.iter().cloned().fold(0.0, f64::max)
}

/// Makespan of the current placement.
pub fn current_makespan(stats: &LbStats) -> f64 {
    stats.pe_loads().iter().cloned().fold(0.0, f64::max)
}

/// A lower bound on any placement's makespan: total work over total speed,
/// or the single largest object on the fastest PE.
pub fn makespan_lower_bound(stats: &LbStats) -> f64 {
    let total: f64 = stats.objs.iter().map(|o| o.load).sum();
    let speed_sum: f64 = stats.pe_speed.iter().sum();
    let max_speed = stats.pe_speed.iter().cloned().fold(1e-12, f64::max);
    let max_obj = stats.objs.iter().map(|o| o.load).fold(0.0, f64::max);
    (total / speed_sum.max(1e-12)).max(max_obj / max_speed)
}

/// Max/avg imbalance after applying `assignment` to `stats`.
pub fn post_imbalance(stats: &LbStats, assignment: &[Option<usize>]) -> f64 {
    let placement: Vec<usize> = stats
        .objs
        .iter()
        .zip(assignment)
        .map(|(o, a)| a.unwrap_or(o.pe))
        .collect();
    let loads: Vec<f64> = stats.objs.iter().map(|o| o.load).collect();
    charm_core::lbframework::imbalance_of(&placement, &loads, &stats.pe_speed, stats.num_pes)
}

#[cfg(test)]
pub(crate) mod testutil {
    use charm_core::lbframework::synthetic_stats;
    use charm_core::{LbStats, Strategy};

    /// Deterministic pseudo-random loads (no rand dependency needed here).
    pub fn skewed_stats(num_pes: usize, num_objs: usize) -> LbStats {
        let loads: Vec<f64> = (0..num_objs)
            .map(|i| {
                let x = ((i * 2654435761) % 1000) as f64 / 1000.0;
                0.1 + x * x * 3.0
            })
            .collect();
        synthetic_stats(num_pes, &loads)
    }

    /// Run a strategy and check the universal post-conditions.
    pub fn check(strategy: &mut dyn Strategy, stats: &LbStats) -> (f64, f64) {
        let before = stats.imbalance();
        let assignment = strategy.assign(stats);
        super::validate_assignment(stats, &assignment);
        let after = super::post_imbalance(stats, &assignment);
        (before, after)
    }
}
