//! DistributedLB: gossip-style probabilistic transfer (paper ref. [30],
//! Menon & Kalé, "A distributed dynamic load balancer for iterative
//! applications", SC13 — the GrapevineLB family).

use charm_core::{LbStats, Strategy};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Fully distributed balancer: each overloaded PE independently offloads
/// objects to randomly probed underloaded PEs, repeated for a few rounds.
/// No PE ever sees global state larger than O(probes) — which is what lets
/// AMR3D balance 128K PEs (Fig. 8) where centralized collection would choke.
///
/// The simulation *executes* the strategy centrally but restricts each
/// decision to the information a gossiping PE would hold: its own load, the
/// global average (propagated by gossip in the real protocol), and a random
/// sample of target PEs.
#[derive(Debug, Clone)]
pub struct DistributedLb {
    /// Random probes an overloaded PE sends per round.
    pub probes: usize,
    /// Transfer rounds.
    pub rounds: usize,
    /// PEs above `trigger` × average participate as donors.
    pub trigger: f64,
    /// Deterministic seed.
    pub seed: u64,
}

impl Default for DistributedLb {
    fn default() -> Self {
        DistributedLb {
            probes: 8,
            rounds: 4,
            trigger: 1.05,
            seed: 0x9e3779b9,
        }
    }
}

impl Strategy for DistributedLb {
    fn name(&self) -> &'static str {
        "DistributedLB"
    }

    fn is_distributed(&self) -> bool {
        true
    }

    fn assign(&mut self, stats: &LbStats) -> Vec<Option<usize>> {
        let n = stats.objs.len();
        let mut out = vec![None; n];
        if stats.num_pes < 2 || n == 0 {
            return out;
        }
        let mut rng = StdRng::seed_from_u64(self.seed);

        let mut pe_load = stats.pe_loads();
        let avg: f64 = pe_load.iter().sum::<f64>() / stats.num_pes as f64;
        if avg <= 0.0 {
            return out;
        }

        // Objects currently on each PE (indices), heaviest first.
        let mut by_pe: Vec<Vec<usize>> = vec![Vec::new(); stats.num_pes];
        for (i, o) in stats.objs.iter().enumerate() {
            by_pe[o.pe].push(i);
        }
        for v in &mut by_pe {
            v.sort_by(|&a, &b| {
                stats.objs[b]
                    .load
                    .total_cmp(&stats.objs[a].load)
                    .then_with(|| a.cmp(&b))
            });
        }

        for _round in 0..self.rounds {
            for donor in 0..stats.num_pes {
                while pe_load[donor] > avg * self.trigger {
                    // Probe a random sample; pick the least loaded target.
                    let mut best: Option<usize> = None;
                    for _ in 0..self.probes {
                        let t = rng.gen_range(0..stats.num_pes);
                        if t == donor {
                            continue;
                        }
                        if best.map(|b| pe_load[t] < pe_load[b]).unwrap_or(true) {
                            best = Some(t);
                        }
                    }
                    let Some(target) = best else { break };
                    if pe_load[target] >= avg {
                        break; // probes found nobody underloaded
                    }
                    // Offload the biggest object that doesn't overshoot.
                    let room = avg - pe_load[target];
                    let pick = by_pe[donor]
                        .iter()
                        .position(|&i| stats.objs[i].load <= room.max(0.0) * 1.25)
                        .or_else(|| {
                            if by_pe[donor].is_empty() {
                                None
                            } else {
                                Some(by_pe[donor].len() - 1)
                            }
                        });
                    let Some(pos) = pick else { break };
                    let i = by_pe[donor].remove(pos);
                    let l = stats.objs[i].load;
                    pe_load[donor] -= l / stats.pe_speed[donor].max(1e-12);
                    pe_load[target] += l / stats.pe_speed[target].max(1e-12);
                    by_pe[target].push(i);
                    out[i] = if target == stats.objs[i].pe {
                        None
                    } else {
                        Some(target)
                    };
                }
            }
        }
        out
    }

    fn decision_cost(&self, _num_objs: usize, num_pes: usize) -> f64 {
        // O(probes × rounds) small messages per PE — constant work per PE.
        50.0 * (self.probes * self.rounds) as f64 * (num_pes as f64).log2().max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{check, skewed_stats};
    use charm_core::lbframework::synthetic_stats;

    #[test]
    fn distributed_reduces_imbalance() {
        let stats = skewed_stats(32, 1024);
        let (before, after) = check(&mut DistributedLb::default(), &stats);
        assert!(before > 1.05);
        assert!(after < before, "must improve: {before} -> {after}");
        assert!(after < 1.3, "should get close to balanced: {after}");
    }

    #[test]
    fn distributed_is_deterministic_per_seed() {
        let stats = skewed_stats(16, 256);
        let a = DistributedLb::default().assign(&stats);
        let b = DistributedLb::default().assign(&stats);
        assert_eq!(a, b);
        let c = DistributedLb {
            seed: 1234,
            ..Default::default()
        }
        .assign(&stats);
        // Different seeds are allowed to differ (not asserted equal).
        let _ = c;
    }

    #[test]
    fn distributed_flag_set() {
        assert!(DistributedLb::default().is_distributed());
        assert!(!crate::GreedyLb.is_distributed());
    }

    #[test]
    fn balanced_input_untouched() {
        let stats = synthetic_stats(4, &[1.0; 16]);
        let moves = DistributedLb::default()
            .assign(&stats)
            .iter()
            .flatten()
            .count();
        assert_eq!(moves, 0);
    }

    #[test]
    fn hotspot_is_dissolved() {
        // All load on PE 0.
        let mut stats = synthetic_stats(8, &[1.0; 64]);
        for o in &mut stats.objs {
            o.pe = 0;
        }
        let (before, after) = check(&mut DistributedLb::default(), &stats);
        assert!(before > 7.9);
        assert!(after < 2.0, "hotspot dissolved: {after}");
    }
}
