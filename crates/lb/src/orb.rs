//! OrbLB: orthogonal recursive bisection over index-derived coordinates.

use charm_core::{Ix, LbStats, Strategy};

/// Geometric balancer: objects are embedded in 3-D space by their array
/// index, then the space is recursively bisected along its longest axis
/// into load-equal halves until one PE's worth remains. Barnes-Hut uses
/// exactly this ("a load balancing strategy which performs Orthogonal
/// Recursive Bisection", §IV-C) because it preserves spatial locality.
#[derive(Debug, Default, Clone, Copy)]
pub struct OrbLb;

/// Embed an index into 3-D space for bisection.
fn position(ix: &Ix) -> [f64; 3] {
    match ix {
        Ix::I1(a) => [*a as f64, 0.0, 0.0],
        Ix::I2(v) => [v[0] as f64, v[1] as f64, 0.0],
        Ix::I3(v) => [v[0] as f64, v[1] as f64, v[2] as f64],
        Ix::I4(v) => [v[0] as f64, v[1] as f64, v[2] as f64],
        // A compute (i,j,k)-(l,m,n) sits midway between its two cells.
        Ix::I6(v) => [
            (v[0] + v[3]) as f64 / 2.0,
            (v[1] + v[4]) as f64 / 2.0,
            (v[2] + v[5]) as f64 / 2.0,
        ],
        // Oct-tree path → the center of the region it denotes.
        Ix::Bits { bits, len } => {
            let mut p = [0.5f64; 3];
            let mut scale = 0.25;
            let mut b = *bits;
            let mut remaining = *len;
            while remaining >= 3 {
                let oct = b & 0b111;
                for (d, axis) in p.iter_mut().enumerate() {
                    if oct & (1 << d) != 0 {
                        *axis += scale;
                    } else {
                        *axis -= scale;
                    }
                }
                b >>= 3;
                remaining -= 3;
                scale *= 0.5;
            }
            p
        }
        Ix::Named(h) => [
            (h & 0xFFFF) as f64,
            ((h >> 16) & 0xFFFF) as f64,
            ((h >> 32) & 0xFFFF) as f64,
        ],
    }
}

/// Recursively bisect `objs` (indices into stats) over PE range
/// `[pe_lo, pe_hi)`, writing assignments.
fn bisect(
    stats: &LbStats,
    pts: &[[f64; 3]],
    mut objs: Vec<usize>,
    pe_lo: usize,
    pe_hi: usize,
    out: &mut [Option<usize>],
) {
    debug_assert!(pe_hi > pe_lo);
    if pe_hi - pe_lo == 1 {
        for i in objs {
            if stats.objs[i].pe != pe_lo {
                out[i] = Some(pe_lo);
            }
        }
        return;
    }
    if objs.is_empty() {
        return;
    }
    // Longest axis of the bounding box.
    let mut lo = [f64::INFINITY; 3];
    let mut hi = [f64::NEG_INFINITY; 3];
    for &i in &objs {
        for d in 0..3 {
            lo[d] = lo[d].min(pts[i][d]);
            hi[d] = hi[d].max(pts[i][d]);
        }
    }
    let axis = (0..3)
        .max_by(|&a, &b| (hi[a] - lo[a]).total_cmp(&(hi[b] - lo[b])))
        .expect("3 axes");

    objs.sort_by(|&a, &b| {
        pts[a][axis]
            .total_cmp(&pts[b][axis])
            .then_with(|| stats.objs[a].id.ix.cmp(&stats.objs[b].id.ix))
    });

    // Split PEs proportionally to aggregate speed, then split load to match.
    let mid_pe = pe_lo + (pe_hi - pe_lo) / 2;
    let speed_left: f64 = (pe_lo..mid_pe).map(|p| stats.pe_speed[p]).sum();
    let speed_right: f64 = (mid_pe..pe_hi).map(|p| stats.pe_speed[p]).sum();
    let total_load: f64 = objs.iter().map(|&i| stats.objs[i].load).sum();
    let left_target = total_load * speed_left / (speed_left + speed_right).max(1e-12);

    let mut acc = 0.0;
    let mut split = objs.len();
    for (k, &i) in objs.iter().enumerate() {
        if acc >= left_target {
            split = k;
            break;
        }
        acc += stats.objs[i].load;
    }
    let right = objs.split_off(split);
    bisect(stats, pts, objs, pe_lo, mid_pe, out);
    bisect(stats, pts, right, mid_pe, pe_hi, out);
}

impl Strategy for OrbLb {
    fn name(&self) -> &'static str {
        "OrbLB"
    }

    fn assign(&mut self, stats: &LbStats) -> Vec<Option<usize>> {
        let n = stats.objs.len();
        let mut out = vec![None; n];
        if stats.num_pes == 0 || n == 0 {
            return out;
        }
        let pts: Vec<[f64; 3]> = stats.objs.iter().map(|o| position(&o.id.ix)).collect();
        bisect(
            stats,
            &pts,
            (0..n).collect(),
            0,
            stats.num_pes,
            &mut out,
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::post_imbalance;
    use charm_core::lbframework::{synthetic_stats, LbStats, ObjStat};
    use charm_core::{ArrayId, ObjId};

    fn spatial_stats_3d(num_pes: usize, side: i32) -> LbStats {
        let mut objs = Vec::new();
        for x in 0..side {
            for y in 0..side {
                for z in 0..side {
                    // Clustered load: heavier near the origin corner, like a
                    // clustered particle distribution.
                    let d = (x + y + z) as f64;
                    objs.push(ObjStat {
                        id: ObjId {
                            array: ArrayId(0),
                            ix: Ix::i3(x, y, z),
                        },
                        pe: ((x * side * side + y * side + z) as usize) % num_pes,
                        load: 1.0 / (1.0 + d),
                        bytes_sent: 0,
                        msgs_sent: 0,
                    });
                }
            }
        }
        LbStats {
            num_pes,
            pe_speed: vec![1.0; num_pes],
            bg_load: vec![0.0; num_pes],
            objs,
            comm: Vec::new(),
        }
    }

    #[test]
    fn orb_balances_clustered_particles() {
        let stats = spatial_stats_3d(8, 8);
        let before = stats.imbalance();
        let a = OrbLb.assign(&stats);
        crate::validate_assignment(&stats, &a);
        let after = post_imbalance(&stats, &a);
        assert!(after < before, "{before} -> {after}");
        assert!(after < 1.4, "ORB should be reasonably balanced: {after}");
    }

    #[test]
    fn orb_keeps_neighbors_together() {
        // Two adjacent cells should land on the same or adjacent partition
        // much more often than random assignment would.
        let stats = spatial_stats_3d(8, 8);
        let a = OrbLb.assign(&stats);
        let placed: std::collections::HashMap<Ix, usize> = stats
            .objs
            .iter()
            .zip(&a)
            .map(|(o, x)| (o.id.ix, x.unwrap_or(o.pe)))
            .collect();
        let mut same = 0u32;
        let mut total = 0u32;
        for x in 0..7 {
            for y in 0..8 {
                for z in 0..8 {
                    let p = placed[&Ix::i3(x, y, z)];
                    let q = placed[&Ix::i3(x + 1, y, z)];
                    total += 1;
                    if p == q {
                        same += 1;
                    }
                }
            }
        }
        // Random placement over 8 PEs would co-locate ~1/8 of pairs.
        assert!(
            same * 3 > total,
            "spatial locality preserved: {same}/{total}"
        );
    }

    #[test]
    fn orb_covers_all_pes() {
        let stats = spatial_stats_3d(16, 8);
        let a = OrbLb.assign(&stats);
        let mut used = [false; 16];
        for (o, x) in stats.objs.iter().zip(&a) {
            used[x.unwrap_or(o.pe)] = true;
        }
        assert!(used.iter().all(|&u| u), "every PE gets a region");
    }

    #[test]
    fn orb_handles_1d_indices() {
        let stats = synthetic_stats(4, &[1.0; 64]);
        let a = OrbLb.assign(&stats);
        crate::validate_assignment(&stats, &a);
        let after = post_imbalance(&stats, &a);
        assert!(after < 1.1);
    }

    #[test]
    fn bits_positions_are_distinct_per_octant() {
        let root = Ix::ROOT;
        let mut seen = std::collections::HashSet::new();
        for c in 0..8u64 {
            let p = position(&root.tree_child(c, 3));
            seen.insert(format!("{p:?}"));
        }
        assert_eq!(seen.len(), 8);
    }
}
