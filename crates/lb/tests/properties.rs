//! Property-based invariants over all load-balancing strategies.

use charm_core::lbframework::{LbStats, ObjStat};
use charm_core::{ArrayId, Ix, ObjId, Strategy as LbStrategy};
use charm_lb::{
    validate_assignment, DistributedLb, GreedyCommLb, GreedyLb, HybridLb, OrbLb,
    RefineLb, RotateLb,
};
use proptest::collection::vec;
use proptest::prelude::*;

fn stats_strategy() -> impl proptest::strategy::Strategy<Value = LbStats> {
    (2usize..24, vec(0.01f64..5.0, 1..300), vec(0.25f64..2.0, 24)).prop_map(
        |(num_pes, loads, speeds)| {
            let objs = loads
                .iter()
                .enumerate()
                .map(|(i, &load)| ObjStat {
                    id: ObjId {
                        array: ArrayId(0),
                        ix: Ix::i1(i as i64),
                    },
                    pe: (i * 7 + 3) % num_pes,
                    load,
                    bytes_sent: 0,
                    msgs_sent: 0,
                })
                .collect();
            LbStats {
                num_pes,
                pe_speed: speeds[..num_pes].to_vec(),
                bg_load: vec![0.0; num_pes],
                objs,
                comm: Vec::new(),
            }
        },
    )
}

fn all_strategies() -> Vec<Box<dyn LbStrategy>> {
    vec![
        Box::new(GreedyLb),
        Box::new(GreedyCommLb::default()),
        Box::new(RefineLb::default()),
        Box::new(HybridLb::default()),
        Box::new(DistributedLb::default()),
        Box::new(OrbLb),
        Box::new(RotateLb),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// No strategy may lose objects, duplicate them, or assign out of range.
    #[test]
    fn assignments_always_valid(stats in stats_strategy()) {
        for mut s in all_strategies() {
            let a = s.assign(&stats);
            validate_assignment(&stats, &a);
        }
    }

    /// Strategies are pure over their input: same stats, same answer.
    #[test]
    fn assignments_deterministic(stats in stats_strategy()) {
        for mut s in all_strategies() {
            let a = s.assign(&stats);
            let b = s.assign(&stats);
            prop_assert_eq!(a, b, "strategy {} not deterministic", s.name());
        }
    }

    /// The balancing strategies never leave the makespan (time of the
    /// slowest PE — what actually gates an iteration) meaningfully worse
    /// than BOTH the original placement and a constant factor of optimal.
    #[test]
    fn balancers_never_hurt_makespan(stats in stats_strategy()) {
        let before = charm_lb::current_makespan(&stats);
        let lower = charm_lb::makespan_lower_bound(&stats);
        for (factor, additive, mut s) in [
            (2.5, false, Box::new(GreedyLb) as Box<dyn LbStrategy>),
            (1.05, false, Box::new(RefineLb::default())),
            (6.0, true, Box::new(HybridLb::default())),
            (6.0, true, Box::new(DistributedLb::default())),
        ] {
            let a = s.assign(&stats);
            let after = charm_lb::post_makespan(&stats, &a);
            // The heuristic strategies (hierarchical/gossip) trade balance
            // quality for scalability; they get an additive allowance.
            let bound = if additive {
                before * 1.05 + lower * factor + 1e-9
            } else {
                (before * 1.05).max(lower * factor) + 1e-9
            };
            prop_assert!(
                after <= bound,
                "{}: before={} after={} lower={}",
                s.name(), before, after, lower
            );
        }
    }

    /// Greedy lands within 2.5× of the makespan lower bound outright.
    #[test]
    fn greedy_quality_bound(stats in stats_strategy()) {
        let mut g = GreedyLb;
        let a = g.assign(&stats);
        let after = charm_lb::post_makespan(&stats, &a);
        let lower = charm_lb::makespan_lower_bound(&stats);
        prop_assert!(after <= lower * 2.5 + 1e-9, "after={after} lower={lower}");
    }
}
