//! End-to-end: an imbalanced iterative application on the runtime, balanced
//! through the AtSync protocol — total time must drop vs. the NoLB run
//! (the shape behind Figs. 8, 9, 12).

use charm_core::{
    Callback, Chare, Ctx, Ix, LbTrigger, RedOp, RedValue, Runtime, Strategy, SysEvent,
};
use charm_lb::{DistributedLb, GreedyLb, HybridLb, RefineLb};
use charm_pup::{Pup, Puper};

const STEPS: u64 = 12;
const LB_EVERY: u64 = 3;
const NUM_OBJS: i64 = 64;

/// Worker with intrinsically skewed per-step cost; every LB_EVERY steps it
/// goes to AtSync instead of contributing directly.
#[derive(Default)]
struct Skew {
    step: u64,
    weight: f64,
}

impl Pup for Skew {
    fn pup(&mut self, p: &mut Puper) {
        p.p(&mut self.step);
        p.p(&mut self.weight);
    }
}

#[derive(Default, Clone)]
struct Go;
impl Pup for Go {
    fn pup(&mut self, _p: &mut Puper) {}
}

impl Chare for Skew {
    type Msg = Go;
    fn on_message(&mut self, _m: Go, ctx: &mut Ctx<'_>) {
        self.step += 1;
        ctx.work(self.weight * 1e6);
        if self.step.is_multiple_of(LB_EVERY) {
            ctx.at_sync();
        } else {
            self.finish_step(ctx);
        }
    }
    fn on_event(&mut self, ev: SysEvent, ctx: &mut Ctx<'_>) {
        if matches!(ev, SysEvent::ResumeFromSync) {
            self.finish_step(ctx);
        }
    }
}

impl Skew {
    fn finish_step(&mut self, ctx: &mut Ctx<'_>) {
        let me = charm_core::ArrayProxy::<Skew>::from_id(ctx.my_id().array);
        ctx.contribute(
            me,
            self.step as u32,
            RedValue::I64(1),
            RedOp::Sum,
            Callback::ToChare {
                array: charm_core::ArrayId(1),
                ix: Ix::i1(0),
            },
        );
    }
}

#[derive(Default)]
struct Driver {
    step: u64,
}
impl Pup for Driver {
    fn pup(&mut self, p: &mut Puper) {
        p.p(&mut self.step);
    }
}
impl Chare for Driver {
    type Msg = Go;
    fn on_message(&mut self, _m: Go, _ctx: &mut Ctx<'_>) {}
    fn on_event(&mut self, ev: SysEvent, ctx: &mut Ctx<'_>) {
        if let SysEvent::Reduction { .. } = ev {
            self.step += 1;
            ctx.log_metric("step_t", ctx.now().as_secs_f64());
            let workers = charm_core::ArrayProxy::<Skew>::from_id(charm_core::ArrayId(0));
            if self.step < STEPS {
                ctx.broadcast(workers, Go);
            } else {
                ctx.exit();
            }
        }
    }
}

fn run_with(strategy: Option<Box<dyn Strategy>>) -> (f64, usize) {
    let mut b = Runtime::builder(charm_core::MachineConfig::homogeneous(8));
    if let Some(s) = strategy {
        b = b.strategy(s).lb_trigger(LbTrigger::AtSync);
    }
    let mut rt = b.build();
    let workers = rt.create_array::<Skew>("workers");
    let driver = rt.create_array::<Driver>("driver");
    rt.set_at_sync(workers, true);
    for i in 0..NUM_OBJS {
        // Badly skewed: clustered placement of heavy objects.
        let weight = if i < 8 { 20.0 } else { 1.0 };
        rt.insert(workers, Ix::i1(i), Skew { step: 0, weight }, Some((i % 2) as usize));
    }
    rt.insert(driver, Ix::i1(0), Driver::default(), Some(0));
    rt.broadcast(workers, Go);
    rt.run();
    let t = rt
        .metric("step_t")
        .last()
        .expect("driver finished all steps")
        .0;
    (t, rt.lb_rounds().len())
}

#[test]
fn greedy_lb_speeds_up_imbalanced_app() {
    let (t_nolb, rounds_nolb) = run_with(None);
    assert_eq!(rounds_nolb, 0);
    let (t_lb, rounds_lb) = run_with(Some(Box::new(GreedyLb)));
    assert!(rounds_lb >= 1, "LB rounds must have run");
    assert!(
        t_lb < t_nolb * 0.55,
        "LB should cut total time substantially: NoLB={t_nolb:.4}s LB={t_lb:.4}s"
    );
}

#[test]
fn all_real_strategies_beat_nolb() {
    let (t_nolb, _) = run_with(None);
    for (name, s) in [
        ("greedy", Box::new(GreedyLb) as Box<dyn Strategy>),
        ("refine", Box::new(RefineLb::default())),
        ("hybrid", Box::new(HybridLb::default())),
        ("distributed", Box::new(DistributedLb::default())),
    ] {
        let (t, rounds) = run_with(Some(s));
        assert!(rounds >= 1, "{name}: no LB rounds ran");
        assert!(
            t < t_nolb,
            "{name} should beat NoLB: {t:.4}s vs {t_nolb:.4}s"
        );
    }
}

#[test]
fn lb_round_bookkeeping_is_recorded() {
    let mut b = Runtime::builder(charm_core::MachineConfig::homogeneous(4));
    b = b.strategy(Box::new(GreedyLb));
    let mut rt = b.build();
    let workers = rt.create_array::<Skew>("workers");
    let driver = rt.create_array::<Driver>("driver");
    rt.set_at_sync(workers, true);
    for i in 0..16 {
        rt.insert(workers, Ix::i1(i), Skew { step: 0, weight: (i % 5) as f64 + 1.0 }, Some(0));
    }
    rt.insert(driver, Ix::i1(0), Driver::default(), Some(0));
    rt.broadcast(workers, Go);
    rt.run();
    let rounds = rt.lb_rounds();
    assert!(!rounds.is_empty());
    for r in rounds {
        assert_eq!(r.strategy, "GreedyLB");
        assert!(r.cost_s > 0.0, "LB rounds cost time");
        assert!(r.imbalance_after <= r.imbalance_before * 1.01 + 0.05);
    }
}

#[test]
fn adaptive_trigger_skips_balanced_phases() {
    // With MetaLB-style triggering and an already balanced app, the
    // balancer should not run at all.
    let mut b = Runtime::builder(charm_core::MachineConfig::homogeneous(4));
    b = b
        .strategy(Box::new(GreedyLb))
        .lb_trigger(LbTrigger::Adaptive { min_imbalance: 1.5 });
    let mut rt = b.build();
    let workers = rt.create_array::<Skew>("workers");
    let driver = rt.create_array::<Driver>("driver");
    rt.set_at_sync(workers, true);
    for i in 0..16 {
        rt.insert(workers, Ix::i1(i), Skew { step: 0, weight: 1.0 }, Some((i % 4) as usize));
    }
    rt.insert(driver, Ix::i1(0), Driver::default(), Some(0));
    rt.broadcast(workers, Go);
    rt.run();
    assert_eq!(rt.lb_rounds().len(), 0, "balanced app must skip LB");
}
