//! Determinism regression: two same-seed runs must be *byte-identical*,
//! even with measurement-based load balancing enabled (LB is where
//! hash-map iteration order historically leaks into behavior).

use charm_apps::leanmd::{run_with_runtime, LeanMdConfig};
use charm_core::TraceConfig;
use charm_lb::GreedyLb;

fn chrome_trace(steps: u64) -> String {
    let (run, rt) = run_with_runtime(LeanMdConfig {
        cells_per_dim: 3,
        atoms_per_cell: 40,
        steps,
        lb_every: 2,
        strategy: Some(Box::new(GreedyLb)),
        trace: Some(TraceConfig::default()),
        ..LeanMdConfig::default()
    });
    assert!(run.unrecoverable.is_none());
    assert!(run.lb_rounds >= 1, "LB actually ran");
    rt.trace_chrome_json().expect("tracing was enabled")
}

#[test]
fn same_seed_runs_export_byte_identical_traces_with_lb() {
    let a = chrome_trace(6);
    let b = chrome_trace(6);
    assert!(!a.is_empty());
    assert!(a == b, "same-seed Chrome traces differ");
}

#[test]
fn different_workloads_differ() {
    // Sanity that the equality above is not vacuous: a different workload
    // must change the trace.
    let a = chrome_trace(6);
    let c = chrome_trace(5);
    assert!(a != c, "workload has no effect on the trace at all");
}
