//! End-to-end tracing check on a real app (ISSUE 2 acceptance criterion):
//! a traced leanmd run must export valid Chrome-trace JSON, and the
//! projections-lite per-entry-method profile must account for exactly the
//! busy time the scheduler reports.

use charm_apps::leanmd::{run_with_runtime, LeanMdConfig};
use charm_core::{SimTime, TraceConfig};

fn traced_leanmd() -> (charm_apps::AppRun, charm_core::Runtime) {
    run_with_runtime(LeanMdConfig {
        cells_per_dim: 3,
        atoms_per_cell: 40,
        steps: 4,
        lb_every: 2,
        strategy: Some(Box::new(charm_lb::GreedyLb)),
        ckpt_at: Some(2),
        trace: Some(TraceConfig::default()),
        ..LeanMdConfig::default()
    })
}

#[test]
fn leanmd_profiles_account_for_all_busy_time() {
    let (run, rt) = traced_leanmd();
    assert!(run.unrecoverable.is_none());
    let tr = rt.tracer().expect("tracing was enabled");

    // The summary aggregator must attribute every nanosecond the scheduler
    // billed as busy to some entry method — exactly, not approximately.
    let busy: SimTime = (0..rt.num_pes()).map(|pe| rt.pe_busy_time(pe)).sum();
    assert!(busy > SimTime::ZERO);
    assert_eq!(tr.total_entry_time(), busy);

    // And the per-profile float view agrees to within rounding.
    let profile_total: f64 = rt.trace_profiles().iter().map(|p| p.total_s).sum();
    let rel = (profile_total - busy.as_secs_f64()).abs() / busy.as_secs_f64();
    assert!(rel < 1e-9, "profile total {profile_total} vs busy {busy}");

    // Profile counts cover every *completed* entry. The run summary counts
    // entries at dispatch, so the final `exit()` can strand at most one
    // in-flight entry per PE.
    let entries: u64 = rt.trace_profiles().iter().map(|p| p.count).sum();
    assert!(entries > 0);
    assert!(entries <= run.entries);
    assert!(run.entries - entries <= rt.num_pes() as u64);
}

#[test]
fn leanmd_chrome_json_is_structurally_sound() {
    let (_, rt) = traced_leanmd();
    let json = rt.trace_chrome_json().expect("export available");

    // Perfetto-loadable skeleton: a traceEvents array of objects.
    assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
    assert!(json.trim_end().ends_with("]}"));
    // Balanced braces/brackets — catches truncated or mis-comma'd output
    // without needing a JSON parser in the test.
    let (mut depth, mut max_depth) = (0i64, 0i64);
    let mut in_str = false;
    let mut esc = false;
    for c in json.chars() {
        if esc {
            esc = false;
            continue;
        }
        match c {
            '\\' if in_str => esc = true,
            '"' => in_str = !in_str,
            '{' | '[' if !in_str => {
                depth += 1;
                max_depth = max_depth.max(depth);
            }
            '}' | ']' if !in_str => depth -= 1,
            _ => {}
        }
    }
    assert_eq!(depth, 0, "unbalanced JSON nesting");
    assert!(max_depth >= 3, "expected nested event objects");

    // One thread-name metadata record per track (PEs + the RTS track).
    let tr = rt.tracer().unwrap();
    let names = json.matches("\"thread_name\"").count();
    assert_eq!(names, tr.num_tracks());
    assert!(json.contains("\"RTS\""));
    // Complete ("X") spans carry microsecond timestamps and durations.
    assert!(json.contains("\"ph\":\"X\""));
    assert!(json.contains("\"dur\":"));

    // LB and checkpoint activity from this config shows up as instants.
    assert!(json.contains("lb_begin"));
    assert!(json.contains("ckpt_commit"));
}

#[test]
fn leanmd_csv_rows_match_retained_records() {
    let (_, rt) = traced_leanmd();
    let csv = rt.trace_csv().expect("export available");
    let mut lines = csv.lines();
    assert_eq!(
        lines.next().unwrap(),
        "t_ns,track,kind,name,dur_ns,bytes,a,b"
    );
    let tr = rt.tracer().unwrap();
    let retained: usize = (0..tr.num_tracks()).map(|t| tr.track_len(t)).sum();
    assert_eq!(lines.count(), retained);
}

#[test]
fn leanmd_report_names_real_entry_methods() {
    let (_, rt) = traced_leanmd();
    let report = rt.projections_report(5).expect("report available");
    // Entry-method names are "<array>::<entry kind>".
    assert!(report.contains("leanmd_cells::"), "report:\n{report}");
    assert!(report.contains("PE utilization"), "report:\n{report}");
    assert!(report.contains("ckpt committed"), "report:\n{report}");
    assert!(report.contains("LB GreedyLB"), "report:\n{report}");
}
