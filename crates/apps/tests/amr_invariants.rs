//! AMR3D structural invariants across randomized configurations: the leaf
//! set tiles the domain exactly, face-adjacent leaves stay within one depth
//! level (2:1 balance), the block population only grows (monotone
//! refinement), and every run is replayable.

use charm_apps::amr3d::{run_with_runtime, AmrConfig};
use charm_core::{Ix, MachineConfig};
use proptest::prelude::*;

fn depth_of(ix: &Ix) -> u8 {
    match ix {
        Ix::Bits { len, .. } => len / 3,
        other => panic!("not a block index: {other}"),
    }
}

fn region(ix: &Ix, max_depth: u8) -> ([u64; 3], u64) {
    let Ix::Bits { bits, len } = ix else {
        panic!("bad index");
    };
    let d = len / 3;
    let c = charm_apps::util::oct_coords(*bits, d);
    let scale = 1u64 << (max_depth - d);
    (
        [
            c[0] as u64 * scale,
            c[1] as u64 * scale,
            c[2] as u64 * scale,
        ],
        scale,
    )
}

fn face_adjacent(a: &Ix, b: &Ix, max_depth: u8) -> bool {
    let (alo, asz) = region(a, max_depth);
    let (blo, bsz) = region(b, max_depth);
    for axis in 0..3 {
        let touch = alo[axis] + asz == blo[axis] || blo[axis] + bsz == alo[axis];
        if !touch {
            continue;
        }
        let mut overlap = true;
        for t in 0..3 {
            if t == axis {
                continue;
            }
            let lo = alo[t].max(blo[t]);
            let hi = (alo[t] + asz).min(blo[t] + bsz);
            if lo >= hi {
                overlap = false;
                break;
            }
        }
        if overlap {
            return true;
        }
    }
    false
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn amr_structure_invariants(
        pes in 2usize..9,
        steps in 5u64..9,
        regrid_every in 2u64..4,
        front in 0.1f64..0.9,
        moving in proptest::bool::ANY,
    ) {
        let max_depth = 4u8;
        let (_run, nblocks, rt) = run_with_runtime(AmrConfig {
            machine: MachineConfig::homogeneous(pes),
            min_depth: 2,
            max_depth,
            block_side: 4,
            steps,
            regrid_every,
            front_start: front,
            front_speed: if moving { 0.08 } else { 0.0 },
            ..AmrConfig::default()
        });
        let blocks_id = rt.array_id("amr_blocks").expect("array exists");
        let all = rt.array_indices(blocks_id);
        prop_assert_eq!(all.len(), nblocks);

        // (1) exact tiling: volumes sum to the domain volume.
        let domain = 1u64 << max_depth;
        let vol: u64 = all
            .iter()
            .map(|ix| {
                let (_, sz) = region(ix, max_depth);
                sz * sz * sz
            })
            .sum();
        prop_assert_eq!(vol, domain.pow(3), "leaves must tile the domain");

        // (2) no overlapping regions: tiling + count of distinct indices is
        // sufficient given (1) and disjoint tree paths, but check depths too.
        for ix in &all {
            prop_assert!(depth_of(ix) >= 2 && depth_of(ix) <= max_depth);
        }

        // (3) 2:1 face balance.
        for a in &all {
            for b in &all {
                if a < b && face_adjacent(a, b, max_depth) {
                    let (da, db) = (depth_of(a), depth_of(b));
                    prop_assert!(
                        da.abs_diff(db) <= 1,
                        "2:1 violated: {} (d{}) vs {} (d{})", a, da, b, db
                    );
                }
            }
        }

        // (4) monotone growth of the block-count journal.
        let counts: Vec<f64> = rt.metric("amr_blocks").iter().map(|&(_, v)| v).collect();
        prop_assert!(counts.windows(2).all(|w| w[1] >= w[0]), "{:?}", counts);

        // (5) replayability.
        let (run2, nblocks2, _) = run_with_runtime(AmrConfig {
            machine: MachineConfig::homogeneous(pes),
            min_depth: 2,
            max_depth,
            block_side: 4,
            steps,
            regrid_every,
            front_start: front,
            front_speed: if moving { 0.08 } else { 0.0 },
            ..AmrConfig::default()
        });
        prop_assert_eq!(nblocks2, nblocks);
        prop_assert_eq!(run2.step_times.len() as u64, steps);
    }
}
