//! Seeded regression tests for the charm-kv service: load balancing must
//! improve tail latency under a drifting hotspot, and a mid-traffic
//! checkpoint/restart must lose no acknowledged PUT.

use charm_apps::kv::{self, KvConfig};
use charm_apps::strategy_by_name;
use charm_core::SimTime;
use charm_machine::presets;

/// A saturating drifting-hotspot scenario: blocked placement concentrates
/// the Zipf-hot shard region on two of eight PEs, and the region moves
/// every few drift periods, so only periodic measurement-based LB keeps
/// the tail down.
fn hotspot_config(requests_per_client: u64) -> KvConfig {
    let mut c = KvConfig::service(presets::cloud(8), requests_per_client);
    c.offered_load = 0.75;
    c.zipf_s = 1.2;
    c.seed = 7;
    c
}

#[test]
fn lb_improves_tail_latency_under_moving_hotspot() {
    let base = kv::run(hotspot_config(300));

    let mut balanced_cfg = hotspot_config(300);
    balanced_cfg.strategy = strategy_by_name("greedy");
    balanced_cfg.lb_period = Some(SimTime::from_millis(10));
    let balanced = kv::run(balanced_cfg);

    assert_eq!(base.acked, balanced.acked, "both arms must serve all traffic");
    assert!(base.unrecoverable.is_none() && balanced.unrecoverable.is_none());
    assert!(balanced.lb_rounds > 0, "periodic LB never ran");
    assert!(balanced.migrations > 0, "LB ran but moved nothing");
    assert!(
        balanced.p99_s < base.p99_s,
        "LB should cut p99 under a moving hotspot: lb-on {:.6}s vs lb-off {:.6}s",
        balanced.p99_s,
        base.p99_s
    );
    // The median barely moves (most requests hit cold shards); the win is
    // in the tail, which is the SLO story this service exists to tell.
    assert!(
        balanced.p999_s < base.p999_s,
        "p999 should improve too: lb-on {:.6}s vs lb-off {:.6}s",
        balanced.p999_s,
        base.p999_s
    );
}

#[test]
fn checkpoint_restart_loses_no_acked_put() {
    // Probe run: how long does undisturbed traffic take?
    let probe = kv::run(hotspot_config(200));
    assert!(probe.acked > 0);
    let makespan = probe.duration_s;

    // Now checkpoint periodically and kill a hot PE mid-traffic.
    let mut cfg = hotspot_config(200);
    cfg.put_fraction = 0.4; // more PUTs → more durability surface
    cfg.auto_ckpt = Some(SimTime::from_secs_f64(makespan * 0.15));
    cfg.failures = vec![(SimTime::from_secs_f64(makespan * 0.45), 1)];
    let (run, rt) = kv::run_with_runtime(cfg);

    assert!(run.unrecoverable.is_none(), "buddy restore failed");
    assert!(run.rollbacks >= 1, "failure never triggered a rollback");
    assert_eq!(
        run.acked,
        8 * 2 * 200,
        "every request must eventually be acked across the restart"
    );
    // Retries are how purged in-flight requests survive the rollback; a
    // failure mid-traffic should exercise that path.
    assert!(run.retries > 0, "restart should have re-driven some requests");
    let checked = kv::verify_acked_puts(&rt).expect("no acknowledged PUT may be lost");
    assert!(checked > 0, "invariant vacuous: no acked PUTs recorded");
}

#[test]
fn survives_preemption_with_elastic_controller() {
    use charm_core::{ElasticConfig, HysteresisPolicy};

    let probe = kv::run(hotspot_config(150));
    let makespan = probe.duration_s;

    let mut cfg = hotspot_config(150);
    cfg.auto_ckpt = Some(SimTime::from_secs_f64(makespan * 0.2));
    cfg.elastic = Some(ElasticConfig::new(
        SimTime::from_secs_f64(makespan * 0.25),
        Box::new(HysteresisPolicy::new(0.9, 0.3, 2, SimTime::ZERO, 4, 8)),
    ));
    cfg.preemptions = vec![(
        SimTime::from_secs_f64(makespan * 0.5),
        6,
        SimTime::from_millis(2),
    )];
    let (run, rt) = kv::run_with_runtime(cfg);

    assert!(run.unrecoverable.is_none(), "preemption must be survivable");
    assert_eq!(run.acked, 8 * 2 * 150);
    kv::verify_acked_puts(&rt).expect("acked PUTs survive preemption");
}

#[test]
fn same_seed_same_service() {
    let mk = || {
        let mut c = hotspot_config(120);
        c.strategy = strategy_by_name("greedy");
        c.lb_period = Some(SimTime::from_millis(10));
        c
    };
    let a = kv::run(mk());
    let b = kv::run(mk());
    assert_eq!(a.store_digest, b.store_digest);
    assert_eq!(a.state_digest, b.state_digest);
    assert_eq!(a.acked, b.acked);
    assert_eq!(a.retries, b.retries);
    assert_eq!(a.latency.counts(), b.latency.counts());
    assert_eq!(a.p99_series, b.p99_series);

    // A different seed is a different universe.
    let mut c = hotspot_config(120);
    c.seed = 8;
    let other = kv::run(c);
    assert_ne!(a.store_digest, other.store_digest);
}
