//! Whole-app PUP round-trip: disk-checkpoint a finished mini-app run,
//! restore it (pup → unpup over every real chare state), checkpoint again,
//! and require the two images to be *byte-identical*. Any lossy or
//! order-unstable `Pup` implementation in any chare breaks this.

use charm_apps::{leanmd, pdes, stencil};
use charm_core::Runtime;
use charm_machine::presets;
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("charm_apps_ckpt_roundtrip");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn assert_ckpt_roundtrip(mut rt: Runtime, name: &str) {
    let a = tmp(&format!("{name}_a.bin"));
    let b = tmp(&format!("{name}_b.bin"));
    rt.checkpoint_to_disk(&a).expect("first checkpoint");
    rt.restore_from_disk(&a).expect("self-restore");
    rt.checkpoint_to_disk(&b).expect("second checkpoint");
    let ia = std::fs::read(&a).unwrap();
    let ib = std::fs::read(&b).unwrap();
    assert!(!ia.is_empty());
    assert_eq!(ia, ib, "{name}: checkpoint image changed across pup→unpup→pup");
}

#[test]
fn leanmd_checkpoint_image_is_pup_stable() {
    let (_run, rt) = leanmd::run_with_runtime(leanmd::LeanMdConfig {
        steps: 4,
        ..Default::default()
    });
    assert_ckpt_roundtrip(rt, "leanmd");
}

#[test]
fn stencil_checkpoint_image_is_pup_stable() {
    let mut cfg = stencil::StencilConfig::cloud_4k(presets::cloud(8), 2);
    cfg.steps = 4;
    let (_run, rt) = stencil::run_with_runtime(cfg);
    assert_ckpt_roundtrip(rt, "stencil");
}

#[test]
fn pdes_checkpoint_image_is_pup_stable() {
    let (_run, rt) = pdes::run_with_runtime(pdes::PdesConfig {
        windows: 6,
        ..Default::default()
    });
    assert_ckpt_roundtrip(rt, "pdes");
}
