//! Barnes-Hut — N-body gravity with tree pieces (§IV-C, Fig. 12).
//!
//! The 3-D space is oct-decomposed into `TreePieces` (bit-vector indices at
//! a fixed depth). Each step a piece builds its local tree, requests remote
//! node data from its spatial partners — *requests carry high priority*,
//! because "the remote requests might take longer than the local
//! computation" — and computes forces when all replies arrive. Particle
//! clustering (a Gaussian blob) makes piece loads wildly uneven; OrbLB
//! restores balance while preserving spatial locality.

use crate::util::{gaussian_density, SyntheticBlob};
use crate::AppRun;
use charm_core::{
    ArrayProxy, Callback, Chare, Ctx, Ix, LbTrigger, MachineConfig, RedOp, RedValue, Runtime,
    Strategy, SysEvent,
};
use charm_pup::{Pup, Puper};

const FLOPS_NEAR_PER_PAIR: f64 = 24.0;
const FLOPS_FAR_PER_NODE: f64 = 60.0;
const FLOPS_TREE_BUILD: f64 = 30.0;
const BYTES_PER_PARTICLE: u64 = 48;
/// Priority for remote-data requests/replies: far ahead of bulk compute.
const PRIO_REQUEST: i64 = -10;
const PRIO_REPLY: i64 = -5;
/// Bulk force computation runs below everything else so communication
/// keeps flowing (the whole point of prioritization, §IV-C).
const PRIO_COMPUTE: i64 = 10;

/// Barnes-Hut configuration.
pub struct BarnesHutConfig {
    /// Machine.
    pub machine: MachineConfig,
    /// Oct-tree decomposition depth: pieces = 8^depth.
    pub depth: u8,
    /// Mean particles per piece.
    pub particles_per_piece: usize,
    /// Clustering strength (peak/floor density).
    pub clustering: f64,
    /// Steps.
    pub steps: u64,
    /// AtSync every k steps (0 = never).
    pub lb_every: u64,
    /// Strategy (OrbLB is the paper's choice).
    pub strategy: Option<Box<dyn Strategy>>,
    /// Use prioritized request messages?
    pub prioritize_requests: bool,
    /// Seed.
    pub seed: u64,
}

impl Default for BarnesHutConfig {
    fn default() -> Self {
        BarnesHutConfig {
            machine: MachineConfig::homogeneous(8),
            depth: 2,
            particles_per_piece: 200,
            clustering: 8.0,
            steps: 8,
            lb_every: 0,
            strategy: None,
            prioritize_requests: true,
            seed: 42,
        }
    }
}

use crate::util::oct_bits as bits_of;

fn piece_ix(c: [u32; 3], d: u8) -> Ix {
    Ix::Bits {
        bits: bits_of(c, d),
        len: 3 * d,
    }
}

/// Particle count from the clustered density.
fn particles_at(mean: usize, clustering: f64, c: [u32; 3], d: u8) -> u32 {
    let side = (1u32 << d) as f64;
    let pos = [
        (c[0] as f64 + 0.5) / side,
        (c[1] as f64 + 0.5) / side,
        (c[2] as f64 + 0.5) / side,
    ];
    let dens = gaussian_density(pos, [0.35, 0.45, 0.55], 0.15, 1.0, clustering - 1.0);
    (mean as f64 * dens / 1.5).round().max(1.0) as u32
}

enum PieceMsg {
    Step(u64),
    /// Request for node data (from `from`, for `step`).
    Request { step: u64, from_bits: u64 },
    /// Reply carrying node data.
    Reply { step: u64, payload: SyntheticBlob },
    /// Self-message: all node data present, run the force kernel.
    ComputeNow,
}

impl Pup for PieceMsg {
    fn pup(&mut self, p: &mut Puper) {
        let mut t: u8 = match self {
            PieceMsg::Step(_) => 0,
            PieceMsg::Request { .. } => 1,
            PieceMsg::Reply { .. } => 2,
            PieceMsg::ComputeNow => 3,
        };
        p.p(&mut t);
        if p.is_unpacking() {
            *self = match t {
                0 => PieceMsg::Step(0),
                1 => PieceMsg::Request {
                    step: 0,
                    from_bits: 0,
                },
                2 => PieceMsg::Reply {
                    step: 0,
                    payload: SyntheticBlob::default(),
                },
                3 => PieceMsg::ComputeNow,
                x => panic!("bad PieceMsg {x}"),
            };
        }
        match self {
            PieceMsg::Step(s) => p.p(s),
            PieceMsg::Request { step, from_bits } => {
                p.p(step);
                p.p(from_bits);
            }
            PieceMsg::Reply { step, payload } => {
                p.p(step);
                p.p(payload);
            }
            PieceMsg::ComputeNow => {}
        }
    }
}

impl Default for PieceMsg {
    fn default() -> Self {
        PieceMsg::Step(0)
    }
}

impl Clone for PieceMsg {
    fn clone(&self) -> Self {
        match self {
            PieceMsg::Step(s) => PieceMsg::Step(*s),
            PieceMsg::Request { step, from_bits } => PieceMsg::Request {
                step: *step,
                from_bits: *from_bits,
            },
            PieceMsg::Reply { step, payload } => PieceMsg::Reply {
                step: *step,
                payload: payload.clone(),
            },
            PieceMsg::ComputeNow => PieceMsg::ComputeNow,
        }
    }
}

#[derive(Default)]
struct TreePiece {
    c: [u32; 3],
    depth: u8,
    n: u32,
    mean_n: u64,
    clustering: f64,
    step: u64,
    replies_seen: u32,
    early_replies: u32,
    partner_particles: u64,
    prioritize: bool,
    lb_every: u64,
    data: SyntheticBlob,
    pieces: ArrayProxy<TreePiece>,
    driver: ArrayProxy<Driver>,
    waiting_resume: bool,
}

impl Pup for TreePiece {
    fn pup(&mut self, p: &mut Puper) {
        charm_pup::pup_all!(
            p;
            self.c, self.depth, self.n, self.mean_n, self.clustering,
            self.step, self.replies_seen, self.early_replies,
            self.partner_particles, self.prioritize, self.lb_every,
            self.data, self.pieces, self.driver, self.waiting_resume
        );
    }
}

impl TreePiece {
    /// Spatial partners: face/edge/corner neighbors (clamped at the domain
    /// boundary) plus a deterministic sample of far pieces (the multipole
    /// interactions that cross the tree).
    fn partners(&self) -> Vec<Ix> {
        let side = 1i64 << self.depth;
        let mut out = Vec::new();
        for dx in -1i64..=1 {
            for dy in -1i64..=1 {
                for dz in -1i64..=1 {
                    if dx == 0 && dy == 0 && dz == 0 {
                        continue;
                    }
                    let x = self.c[0] as i64 + dx;
                    let y = self.c[1] as i64 + dy;
                    let z = self.c[2] as i64 + dz;
                    if x < 0 || y < 0 || z < 0 || x >= side || y >= side || z >= side {
                        continue;
                    }
                    out.push(piece_ix([x as u32, y as u32, z as u32], self.depth));
                }
            }
        }
        // Far partners: a few deterministic distant pieces.
        let total = 1u64 << (3 * self.depth);
        let me = bits_of(self.c, self.depth);
        let far = (total.ilog2() as u64).max(1);
        for k in 1..=far {
            let other = (me ^ (total / 2).max(1) ^ (k * 2654435761)) % total;
            if other != me {
                let ix = Ix::Bits {
                    bits: other,
                    len: 3 * self.depth,
                };
                if !out.contains(&ix) {
                    out.push(ix);
                }
            }
        }
        out
    }

    fn start_step(&mut self, ctx: &mut Ctx<'_>) {
        self.n = particles_at(
            self.mean_n as usize,
            self.clustering,
            self.c,
            self.depth,
        );
        self.data.set_len(self.n as u64 * BYTES_PER_PARTICLE);
        // Local tree build.
        let n = self.n as f64;
        ctx.work(n * FLOPS_TREE_BUILD * n.max(2.0).log2());
        // Request node data from partners (prioritized).
        self.partner_particles = 0;
        let prio = if self.prioritize { PRIO_REQUEST } else { 0 };
        let me = bits_of(self.c, self.depth);
        for ix in self.partners() {
            ctx.send_prio(
                self.pieces,
                ix,
                PieceMsg::Request {
                    step: self.step,
                    from_bits: me,
                },
                prio,
            );
        }
    }

    fn maybe_compute(&mut self, ctx: &mut Ctx<'_>) {
        let expected = self.partners().len() as u32;
        if self.replies_seen < expected {
            return;
        }
        self.replies_seen = 0;
        // Don't compute inside the (high-priority) reply entry: schedule
        // the bulk kernel at low priority so requests from other pieces
        // keep being served first.
        let prio = if self.prioritize { PRIO_COMPUTE } else { 0 };
        let me = bits_of(self.c, self.depth);
        ctx.send_prio(
            self.pieces,
            Ix::Bits {
                bits: me,
                len: 3 * self.depth,
            },
            PieceMsg::ComputeNow,
            prio,
        );
    }

    fn compute_forces(&mut self, ctx: &mut Ctx<'_>) {
        // Force computation: O(n log N) like the real algorithm — per local
        // particle, near interactions proportional to the local *physical*
        // density (n relative to the decomposition's mean piece population,
        // which is invariant under refinement depth) plus multipole
        // evaluations. Total work is therefore independent of the
        // decomposition; only balance and overlap change with it.
        let n = self.n as f64;
        let density_ratio = n / self.mean_n.max(1) as f64;
        ctx.work(
            n * density_ratio * FLOPS_NEAR_PER_PAIR * 32.0
                + n * FLOPS_FAR_PER_NODE * 24.0,
        );
        let lb_step = self.lb_every > 0 && (self.step + 1).is_multiple_of(self.lb_every);
        self.step += 1;
        if lb_step {
            self.waiting_resume = true;
            ctx.at_sync();
        } else {
            self.contribute_done(ctx);
        }
    }

    fn contribute_done(&mut self, ctx: &mut Ctx<'_>) {
        ctx.contribute(
            self.pieces,
            self.step as u32,
            RedValue::I64(self.n as i64),
            RedOp::Sum,
            Callback::ToChare {
                array: self.driver.id(),
                ix: Ix::i1(0),
            },
        );
    }
}

impl Chare for TreePiece {
    type Msg = PieceMsg;

    fn on_message(&mut self, msg: PieceMsg, ctx: &mut Ctx<'_>) {
        match msg {
            PieceMsg::Step(s) => {
                debug_assert_eq!(s, self.step);
                self.replies_seen += std::mem::take(&mut self.early_replies);
                self.start_step(ctx);
                self.maybe_compute(ctx);
            }
            PieceMsg::Request { step, from_bits } => {
                // Serve node data regardless of our own step position.
                let prio = if self.prioritize { PRIO_REPLY } else { 0 };
                ctx.send_prio(
                    self.pieces,
                    Ix::Bits {
                        bits: from_bits,
                        len: 3 * self.depth,
                    },
                    PieceMsg::Reply {
                        step,
                        payload: SyntheticBlob::new(self.n as u64 * BYTES_PER_PARTICLE / 4),
                    },
                    prio,
                );
            }
            PieceMsg::Reply { step, payload } => {
                self.partner_particles += payload.len() / (BYTES_PER_PARTICLE / 4);
                if step == self.step {
                    self.replies_seen += 1;
                    self.maybe_compute(ctx);
                } else {
                    debug_assert_eq!(step, self.step + 1);
                    self.early_replies += 1;
                }
            }
            PieceMsg::ComputeNow => self.compute_forces(ctx),
        }
    }

    fn on_event(&mut self, ev: SysEvent, ctx: &mut Ctx<'_>) {
        if matches!(ev, SysEvent::ResumeFromSync) && self.waiting_resume {
            self.waiting_resume = false;
            self.contribute_done(ctx);
        }
    }

    fn load_hint(&self) -> f64 {
        (self.n as f64).powi(2).max(1.0)
    }
}

#[derive(Default)]
struct Driver {
    step: u64,
    steps: u64,
    pieces: ArrayProxy<TreePiece>,
}

impl Pup for Driver {
    fn pup(&mut self, p: &mut Puper) {
        charm_pup::pup_all!(p; self.step, self.steps, self.pieces);
    }
}

impl Chare for Driver {
    type Msg = u8;
    fn on_message(&mut self, _m: u8, ctx: &mut Ctx<'_>) {
        ctx.broadcast(self.pieces, PieceMsg::Step(0));
    }
    fn on_event(&mut self, ev: SysEvent, ctx: &mut Ctx<'_>) {
        if let SysEvent::Reduction { .. } = ev {
            self.step += 1;
            ctx.log_metric("bh_step", ctx.now().as_secs_f64());
            if self.step < self.steps {
                ctx.broadcast(self.pieces, PieceMsg::Step(self.step));
            } else {
                ctx.exit();
            }
        }
    }
}

/// Run Barnes-Hut.
pub fn run(mut config: BarnesHutConfig) -> AppRun {
    let mut b = Runtime::builder(std::mem::replace(
        &mut config.machine,
        MachineConfig::homogeneous(1),
    ))
    .seed(config.seed)
    .lb_trigger(LbTrigger::AtSync);
    if let Some(s) = config.strategy.take() {
        b = b.strategy(s);
    }
    let mut rt = b.build();
    let pieces: ArrayProxy<TreePiece> = rt.create_array("bh_pieces");
    let driver: ArrayProxy<Driver> = rt.create_array("bh_driver");
    rt.set_at_sync(pieces, config.lb_every > 0);

    let d = config.depth;
    let side = 1u32 << d;
    let total = (side as usize).pow(3);
    let pes = rt.num_pes();
    let mut linear = 0usize;
    for x in 0..side {
        for y in 0..side {
            for z in 0..side {
                let c = [x, y, z];
                let n = particles_at(config.particles_per_piece, config.clustering, c, d);
                let pe = linear * pes / total;
                linear += 1;
                rt.insert(
                    pieces,
                    piece_ix(c, d),
                    TreePiece {
                        c,
                        depth: d,
                        n,
                        mean_n: config.particles_per_piece as u64,
                        clustering: config.clustering,
                        prioritize: config.prioritize_requests,
                        lb_every: config.lb_every,
                        data: SyntheticBlob::new(n as u64 * BYTES_PER_PARTICLE),
                        pieces,
                        driver,
                        ..TreePiece::default()
                    },
                    Some(pe),
                );
            }
        }
    }
    rt.insert(
        driver,
        Ix::i1(0),
        Driver {
            steps: config.steps,
            pieces,
            ..Driver::default()
        },
        Some(0),
    );
    rt.send(driver, Ix::i1(0), 0u8);
    let summary = rt.run();
    crate::collect_app_run(&rt, &summary, "bh_step")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::oct_coords as coords_of;

    #[test]
    fn coords_bits_roundtrip() {
        for d in 1..=3u8 {
            let side = 1u32 << d;
            for x in 0..side {
                for y in 0..side {
                    for z in 0..side {
                        let b = bits_of([x, y, z], d);
                        assert_eq!(coords_of(b, d), [x, y, z]);
                    }
                }
            }
        }
    }

    #[test]
    fn completes_all_steps() {
        let r = run(BarnesHutConfig::default());
        assert_eq!(r.step_times.len(), 8);
    }

    #[test]
    fn overdecomposition_beats_one_piece_per_pe() {
        // Fig. 12: 500m vs 500m_NO — over-decomposition gives the balancer
        // units to move; with one piece per PE the hotspot piece IS the
        // granularity limit. Both configurations run with ORB LB, as in the
        // paper's 500m series.
        let mk = |depth: u8, ppp: usize| {
            run(BarnesHutConfig {
                depth,
                particles_per_piece: ppp,
                clustering: 10.0,
                lb_every: 3,
                steps: 10,
                strategy: Some(Box::new(charm_lb::OrbLb)),
                ..BarnesHutConfig::default()
            })
        };
        // Depths that resolve the clustering blob (sigma 0.15 vs piece
        // side 0.25/0.125): 64 pieces (8/PE) vs 512 pieces (64/PE).
        let no = mk(2, 800);
        let over = mk(3, 100);
        let tail = |r: &AppRun| {
            let d = r.step_durations();
            d[d.len() - 3..].iter().sum::<f64>() / 3.0
        };
        assert!(
            tail(&over) < tail(&no) * 0.8,
            "over-decomposition must win: over={:.5}s no={:.5}s",
            tail(&over),
            tail(&no)
        );
    }

    #[test]
    fn orb_lb_improves_clustered_runs() {
        let mk = |lb: bool| BarnesHutConfig {
            depth: 2,
            particles_per_piece: 150,
            clustering: 10.0,
            steps: 10,
            lb_every: if lb { 3 } else { 0 },
            strategy: lb.then(|| Box::new(charm_lb::OrbLb) as Box<dyn Strategy>),
            ..BarnesHutConfig::default()
        };
        let nolb = run(mk(false));
        let lb = run(mk(true));
        assert!(lb.lb_rounds >= 1);
        let tail = |r: &AppRun| {
            let v = r.step_durations();
            v[v.len() - 3..].iter().sum::<f64>() / 3.0
        };
        assert!(
            tail(&lb) < tail(&nolb),
            "ORB should help: lb={:.5}s nolb={:.5}s",
            tail(&lb),
            tail(&nolb)
        );
    }

    #[test]
    fn prioritized_requests_speed_up_steps() {
        let with = run(BarnesHutConfig {
            prioritize_requests: true,
            depth: 2,
            particles_per_piece: 300,
            ..BarnesHutConfig::default()
        });
        let without = run(BarnesHutConfig {
            prioritize_requests: false,
            depth: 2,
            particles_per_piece: 300,
            ..BarnesHutConfig::default()
        });
        assert!(
            with.avg_step_s() <= without.avg_step_s() * 1.001,
            "priority must not hurt, should help: with={:.6}s without={:.6}s",
            with.avg_step_s(),
            without.avg_step_s()
        );
    }

    #[test]
    fn deterministic() {
        let a = run(BarnesHutConfig::default());
        let b = run(BarnesHutConfig::default());
        assert_eq!(a.step_times, b.step_times);
    }
}
