//! LULESH on AMPI (§IV-D, Fig. 14).
//!
//! The Livermore shock-hydrodynamics proxy runs as MPI ranks over a 3-D
//! domain decomposition: each iteration exchanges boundary data with up to
//! six face neighbors, computes over its elements, and joins a global
//! Min-allreduce for the time-step. Here every rank is a *virtualized* AMPI
//! rank (`charm-ampi`), which buys the paper's results:
//!
//! * **v=8 cache blocking** — eight-way virtualization shrinks the per-rank
//!   working set (~283 MB/node → ~35 MB) under Hopper's 36 MB of L2+L3,
//!   a 2.4× speedup with the same source code,
//! * **automatic LB** — LULESH's mild region imbalance is absorbed by
//!   migrating ranks,
//! * **any core count** — the *virtual* rank count must be cubic; the PE
//!   count (3000, 6000, …) need not be.

use charm_ampi::{AmpiWorld, CacheModel, Mpi, RankProgram};
use charm_core::{MachineConfig, RedOp, RedValue, Runtime, Strategy};
use charm_pup::{Pup, Puper};

/// Bytes of state per element (the paper: 27000 elements/PE ≈ 283 MB/node
/// on 24-core Hopper nodes → ~437 bytes/element).
pub const BYTES_PER_ELEMENT: f64 = 440.0;
/// Flops charged per element per iteration (several hydro kernels).
const FLOPS_PER_ELEMENT: f64 = 180.0;
/// Wire bytes per face element exchanged.
const FACE_BYTES_PER_ELEMENT: u64 = 24;

/// LULESH configuration.
pub struct LuleshConfig {
    /// Machine (Hopper preset for Fig. 14).
    pub machine: MachineConfig,
    /// Virtual MPI ranks per side: ranks = side³ (must be cubic — the
    /// *virtual* count, not the PE count).
    pub ranks_per_side: usize,
    /// Elements per rank (paper default 27000 — weak scaling constant).
    pub elements_per_rank: usize,
    /// Iterations.
    pub iterations: u64,
    /// Migrate (AMPI_Migrate → AtSync) every k iterations (0 = never).
    pub migrate_every: u64,
    /// LB strategy for migrations.
    pub strategy: Option<Box<dyn Strategy>>,
    /// Apply the cache model (None = cache-oblivious baseline)?
    pub cache: Option<CacheModel>,
    /// Per-rank intrinsic load skew amplitude (LULESH's region imbalance).
    pub skew: f64,
    /// Seed.
    pub seed: u64,
}

impl LuleshConfig {
    /// Fig. 14's per-node cache model. Hopper nodes have 24 cores sharing
    /// ~36 MB of L2+L3; with one rank per core, 24 working sets contend for
    /// the cache, so each rank effectively owns a 1/24 share (~1.5 MB).
    /// 27000 elements/rank ≈ 11.9 MB ≫ 1.5 MB → thrash. Eight-way
    /// virtualization divides each rank's working set by 8 (≈1.5 MB),
    /// which fits its share — "effectively, each iteration's work is
    /// performed in eight portions, each with smaller working sets".
    pub fn hopper_cache(elements_per_rank: usize) -> CacheModel {
        CacheModel {
            cache_per_node: 36e6,
            ranks_per_node: 24.0,
            working_set_per_rank: elements_per_rank as f64 * BYTES_PER_ELEMENT,
            miss_penalty: 2.8,
        }
    }
}

impl Default for LuleshConfig {
    fn default() -> Self {
        LuleshConfig {
            machine: MachineConfig::homogeneous(8),
            ranks_per_side: 2,
            elements_per_rank: 27000,
            iterations: 8,
            migrate_every: 0,
            strategy: None,
            cache: None,
            skew: 0.15,
            seed: 42,
        }
    }
}

/// The per-rank LULESH program (message-driven state machine).
#[derive(Default)]
struct LuleshRank {
    side: u64,
    elements: u64,
    iterations: u64,
    iter: u64,
    migrate_every: u64,
    skew: f64,
    phase: u32,
    faces_expected: u32,
    faces_seen: u32,
    dt: f64,
    last_step_t: f64,
}

impl Pup for LuleshRank {
    fn pup(&mut self, p: &mut Puper) {
        charm_pup::pup_all!(
            p;
            self.side, self.elements, self.iterations, self.iter,
            self.migrate_every, self.skew, self.phase, self.faces_expected,
            self.faces_seen, self.dt, self.last_step_t
        );
    }
}

impl LuleshRank {
    fn coords(&self, rank: u64) -> [u64; 3] {
        let s = self.side;
        [rank % s, (rank / s) % s, rank / (s * s)]
    }

    fn rank_at(&self, c: [u64; 3]) -> u64 {
        c[0] + c[1] * self.side + c[2] * self.side * self.side
    }

    /// Non-periodic face neighbors.
    fn neighbors(&self, rank: u64) -> Vec<u64> {
        let c = self.coords(rank);
        let mut out = Vec::with_capacity(6);
        for axis in 0..3 {
            for d in [-1i64, 1] {
                let v = c[axis] as i64 + d;
                if v < 0 || v >= self.side as i64 {
                    continue;
                }
                let mut cc = c;
                cc[axis] = v as u64;
                out.push(self.rank_at(cc));
            }
        }
        out
    }

    /// Per-rank work factor: LULESH's material regions make some domains a
    /// bit heavier — "the load imbalance in LULESH is designed to be small".
    fn region_factor(&self, rank: u64) -> f64 {
        let h = rank
            .wrapping_mul(0x9E3779B97F4A7C15)
            .rotate_left(17)
            .wrapping_mul(0xBF58476D1CE4E5B9);
        1.0 + self.skew * ((h >> 40) as f64 / (1u64 << 24) as f64 - 0.5) * 2.0
    }
}

impl RankProgram for LuleshRank {
    fn step(&mut self, mpi: &mut Mpi<'_, '_>) {
        loop {
            match self.phase {
                // Send faces for this iteration.
                0 => {
                    if self.iter >= self.iterations {
                        mpi.finish();
                        if mpi.rank() == 0 {
                            mpi.exit_all();
                        }
                        return;
                    }
                    let nbs = self.neighbors(mpi.rank());
                    self.faces_expected = nbs.len() as u32;
                    self.faces_seen = 0;
                    let face_elems = (self.elements as f64).powf(2.0 / 3.0) as u64;
                    for nb in nbs {
                        mpi.isend(
                            nb,
                            self.iter as i64,
                            vec![0u8; (face_elems * FACE_BYTES_PER_ELEMENT) as usize],
                        );
                    }
                    self.phase = 1;
                }
                // Receive all faces.
                1 => {
                    let nbs = self.neighbors(mpi.rank());
                    for nb in nbs {
                        while mpi.try_recv(nb, self.iter as i64).is_some() {
                            self.faces_seen += 1;
                        }
                    }
                    if self.faces_seen < self.faces_expected {
                        return; // blocked on halos
                    }
                    self.phase = 2;
                }
                // Compute the hydro kernels and start the dt allreduce.
                2 => {
                    let factor = self.region_factor(mpi.rank());
                    mpi.work(self.elements as f64 * FLOPS_PER_ELEMENT * factor);
                    let local_dt = 1.0 / factor; // heavier region → smaller dt
                    mpi.allreduce(
                        self.iter as u32 + 1,
                        RedValue::F64(local_dt),
                        RedOp::Min,
                    );
                    self.phase = 3;
                }
                // Wait for the global minimum time step.
                3 => match mpi.try_collective(self.iter as u32 + 1) {
                    Some(v) => {
                        self.dt = v.as_f64();
                        if mpi.rank() == 0 {
                            let now = mpi.now_s();
                            mpi.log_metric("lulesh_iter", now);
                            mpi.log_metric("lulesh_iter_dt", now - self.last_step_t);
                            self.last_step_t = now;
                        }
                        self.iter += 1;
                        self.phase = 0;
                        if self.migrate_every > 0 && self.iter.is_multiple_of(self.migrate_every) {
                            mpi.migrate();
                            return; // resume after the AtSync round
                        }
                    }
                    None => return, // blocked on the collective
                },
                _ => return,
            }
        }
    }
}

/// Result of a LULESH run.
#[derive(Debug)]
pub struct LuleshRun {
    /// Per-iteration completion timestamps (seconds, rank 0).
    pub iter_times: Vec<f64>,
    /// Average steady-state iteration time.
    pub avg_iter_s: f64,
    /// Total run time.
    pub total_s: f64,
    /// LB rounds (migration events).
    pub lb_rounds: usize,
}

/// Run LULESH over AMPI.
pub fn run(mut config: LuleshConfig) -> LuleshRun {
    let mut b = Runtime::builder(std::mem::replace(
        &mut config.machine,
        MachineConfig::homogeneous(1),
    ))
    .seed(config.seed);
    if let Some(s) = config.strategy.take() {
        b = b.strategy(s);
    }
    let mut rt = b.build();
    let side = config.ranks_per_side;
    let ranks = side * side * side;
    let world = AmpiWorld::<LuleshRank>::create(
        &mut rt,
        "lulesh",
        ranks,
        config.cache.as_ref(),
        |_r| LuleshRank {
            side: side as u64,
            elements: config.elements_per_rank as u64,
            iterations: config.iterations,
            migrate_every: config.migrate_every,
            skew: config.skew,
            ..LuleshRank::default()
        },
    );
    world.kick(&mut rt);
    let summary = rt.run();
    let iter_times: Vec<f64> = rt.metric("lulesh_iter").iter().map(|&(_, v)| v).collect();
    let avg = if iter_times.len() >= 2 {
        (iter_times[iter_times.len() - 1] - iter_times[0]) / (iter_times.len() - 1) as f64
    } else {
        summary.end_time.as_secs_f64() / iter_times.len().max(1) as f64
    };
    LuleshRun {
        iter_times,
        avg_iter_s: avg,
        total_s: summary.end_time.as_secs_f64(),
        lb_rounds: rt.lb_rounds().len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completes_iterations() {
        let r = run(LuleshConfig::default());
        assert_eq!(r.iter_times.len(), 8);
        assert!(r.avg_iter_s > 0.0);
    }

    #[test]
    fn virtualization_with_cache_model_speeds_up() {
        // Fig. 14's 2.4×: v=1 (8 ranks on 8 PEs, working set misses) vs
        // v=8 (64 ranks on 8 PEs, working set fits).
        let elements = 27000;
        let v1 = run(LuleshConfig {
            ranks_per_side: 2,
            elements_per_rank: elements,
            cache: Some(LuleshConfig::hopper_cache(elements)),
            ..LuleshConfig::default()
        });
        let v8 = run(LuleshConfig {
            ranks_per_side: 4,
            elements_per_rank: elements / 8,
            cache: Some(LuleshConfig::hopper_cache(elements / 8)),
            ..LuleshConfig::default()
        });
        let speedup = v1.avg_iter_s / v8.avg_iter_s;
        assert!(
            speedup > 1.8,
            "cache blocking should give roughly the paper's 2.4x: {speedup:.2}x (v1={:.5}s v8={:.5}s)",
            v1.avg_iter_s,
            v8.avg_iter_s
        );
    }

    #[test]
    fn migration_lb_absorbs_region_imbalance() {
        let base = |migrate: bool| LuleshConfig {
            ranks_per_side: 4,
            elements_per_rank: 3000,
            iterations: 12,
            skew: 0.6,
            migrate_every: if migrate { 3 } else { 0 },
            strategy: migrate.then(|| Box::new(charm_lb::GreedyLb) as Box<dyn Strategy>),
            ..LuleshConfig::default()
        };
        let nolb = run(base(false));
        let lb = run(base(true));
        assert!(lb.lb_rounds >= 1);
        let tail = |r: &LuleshRun| {
            let n = r.iter_times.len();
            (r.iter_times[n - 1] - r.iter_times[n - 4]) / 3.0
        };
        assert!(
            tail(&lb) < tail(&nolb),
            "rank migration should absorb skew: lb={:.6}s nolb={:.6}s",
            tail(&lb),
            tail(&nolb)
        );
    }

    #[test]
    fn non_cubic_pe_counts_work() {
        // The PE count need not be cubic — only the rank count is.
        for pes in [3usize, 5, 6, 7] {
            let r = run(LuleshConfig {
                machine: MachineConfig::homogeneous(pes),
                ranks_per_side: 2,
                elements_per_rank: 2000,
                iterations: 4,
                ..LuleshConfig::default()
            });
            assert_eq!(r.iter_times.len(), 4, "pes={pes}");
        }
    }

    #[test]
    fn deterministic() {
        let a = run(LuleshConfig::default());
        let b = run(LuleshConfig::default());
        assert_eq!(a.iter_times, b.iter_times);
    }
}
