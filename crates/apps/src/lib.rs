//! # charm-apps — the paper's mini-applications (§IV)
//!
//! Each module is one of the benchmarks the evaluation section uses,
//! implemented on the charm-rs runtime with the same decomposition and the
//! same runtime-feature reliance the paper describes:
//!
//! | module | paper | decomposition | features exercised |
//! |---|---|---|---|
//! | [`leanmd`] | §IV-B, Figs 5/9/10/11/17 | 3-D `Cells` + 6-D pairwise `Computes` | over-decomposition, HybridLB, in-memory ckpt/restart, shrink/expand, heterogeneity awareness |
//! | [`amr3d`] | §IV-A, Fig 8 | oct-tree blocks with bit-vector indices | dynamic insertion, quiescence-based restructure, DistributedLB, ckpt/restart |
//! | [`barneshut`] | §IV-C, Figs 12/13 | spatial `TreePieces` | prioritized messages, OrbLB |
//! | [`pdes`] | §IV-E, Fig 15 | logical processes, YAWNS windows | over-decomposition, TRAM |
//! | [`lulesh`] | §IV-D, Fig 14 | AMPI virtual ranks over a hex mesh | virtualization, cache model, rank migration LB |
//! | [`stencil`] | §IV-F, Figs 4/16 | 2-D Jacobi blocks | overlap via over-decomposition, RTS-triggered LB, DVFS schemes |
//! | [`pingpipe`] | §III-E, Fig 6 | two endpoints, pipelined transfers | control points + introspective tuner |
//! | [`netbench`] | §IV-F | two endpoints | latency/bandwidth probes (cloud vs HPC fabrics) |
//! | [`changa`] | §IV-C, Fig 13 | phase-structured N-body step | interop-grade composition of phases |

pub mod amr3d;
pub mod barneshut;
pub mod changa;
pub mod kv;
pub mod leanmd;
pub mod lulesh;
pub mod netbench;
pub mod pdes;
pub mod pingpipe;
pub mod stencil;
pub mod util;

/// Result shape shared by all the iterative mini-apps.
#[derive(Debug, Clone)]
pub struct AppRun {
    /// Per-step completion times, seconds of virtual time (cumulative
    /// timestamps, one per completed step).
    pub step_times: Vec<f64>,
    /// Total virtual time of the measured region.
    pub total_s: f64,
    /// Entry methods executed.
    pub entries: u64,
    /// Messages delivered.
    pub messages: u64,
    /// Mean PE utilization over the run.
    pub avg_utilization: f64,
    /// Number of LB rounds that ran.
    pub lb_rounds: usize,
    /// Set when the run hit an unrecoverable failure (§III-B: both
    /// checkpoint copies of some chare destroyed); the surviving PEs still
    /// drained, but the result is incomplete.
    pub unrecoverable: Option<String>,
}

impl AppRun {
    /// Average time per step over the steady-state (skips the first step,
    /// which carries start-up costs).
    pub fn avg_step_s(&self) -> f64 {
        if self.step_times.len() < 2 {
            return self.total_s / self.step_times.len().max(1) as f64;
        }
        let first = self.step_times[0];
        let last = *self.step_times.last().expect("non-empty");
        (last - first) / (self.step_times.len() - 1) as f64
    }

    /// Per-step durations (differences of the cumulative timestamps).
    pub fn step_durations(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.step_times.len());
        let mut prev = 0.0;
        for &t in &self.step_times {
            out.push(t - prev);
            prev = t;
        }
        out
    }
}

pub(crate) fn collect_app_run(
    rt: &charm_core::Runtime,
    summary: &charm_core::RunSummary,
    step_metric: &str,
) -> AppRun {
    AppRun {
        step_times: rt.metric(step_metric).iter().map(|&(t, _)| t).collect(),
        total_s: summary.end_time.as_secs_f64(),
        entries: summary.entries,
        messages: summary.messages,
        avg_utilization: summary.avg_utilization,
        lb_rounds: rt.lb_rounds().len(),
        unrecoverable: rt.unrecoverable().map(|u| u.to_string()),
    }
}

/// Resolve a strategy by name — the switchboard bench binaries use.
pub fn strategy_by_name(name: &str) -> Option<Box<dyn charm_core::Strategy>> {
    Some(match name {
        "greedy" => Box::new(charm_lb::GreedyLb),
        "refine" => Box::new(charm_lb::RefineLb::default()),
        "hybrid" => Box::new(charm_lb::HybridLb::default()),
        "distributed" => Box::new(charm_lb::DistributedLb::default()),
        "orb" => Box::new(charm_lb::OrbLb),
        "greedycomm" => Box::new(charm_lb::GreedyCommLb::default()),
        "rotate" => Box::new(charm_lb::RotateLb),
        "null" | "none" => Box::new(charm_core::NullLb),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn app_run_statistics() {
        let r = AppRun {
            step_times: vec![1.0, 1.5, 2.0, 2.5],
            total_s: 2.5,
            entries: 0,
            messages: 0,
            avg_utilization: 0.0,
            lb_rounds: 0,
            unrecoverable: None,
        };
        assert!((r.avg_step_s() - 0.5).abs() < 1e-12);
        assert_eq!(r.step_durations(), vec![1.0, 0.5, 0.5, 0.5]);
    }

    #[test]
    fn strategies_resolve() {
        for n in [
            "greedy",
            "refine",
            "hybrid",
            "distributed",
            "orb",
            "greedycomm",
            "rotate",
            "null",
        ] {
            assert!(strategy_by_name(n).is_some(), "{n}");
        }
        assert!(strategy_by_name("bogus").is_none());
    }
}
