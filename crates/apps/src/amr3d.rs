//! AMR3D — tree-based structured adaptive mesh refinement (§IV-A, Fig. 8).
//!
//! A 3-D advection solve on an oct-tree of fixed-size blocks, leaning on
//! exactly the features §IV-A lists:
//!
//! * **bit-vector indices** — a block's chare index is its oct-tree path;
//!   parents, children and same-depth neighbors are simple local index
//!   arithmetic, so *no process holds the tree* (`O(blocks/P)` memory, not
//!   the `O(blocks)` replication of Enzo/Chombo/Flash),
//! * **dynamic insertion/deletion** — refinement inserts child blocks into
//!   the chare array at run time,
//! * **quiescence detection** — mesh restructuring needs only O(1) global
//!   collectives: one QD wave after the refinement-decision ripple, one
//!   after the restructure itself, instead of `O(tree depth)` collectives,
//! * **distributed load balancing** — refinement clusters around the
//!   advected feature; children stay on their parent's PE (data locality),
//!   so the cluster's PEs overload until DistributedLB diffuses them.
//!
//! Restructuring protocol (paper's algorithm, adapted):
//! 1. `Decide`: every leaf evaluates the refinement criterion; refiners
//!    notify face neighbors; a *coarser* neighbor of a refiner is forced to
//!    refine as well (2:1 face balance) and the notice ripples. QD detects
//!    when decisions are stable.
//! 2. `Share`: every block sends its decision to its face neighbors; once a
//!    block holds all its neighbors' decisions it can compute — purely
//!    locally — the post-regrid neighbor lists for itself or its children,
//!    then applies (inserts children / destroys itself). QD detects
//!    completion; stepping resumes.
//!
//! Simplification vs. the full mini-app (documented in DESIGN.md):
//! refinement is monotone (no coarsening); the advected feature leaves
//! refined blocks in its wake, as in the early phase of a real AMR run.

use crate::util::{oct_bits, oct_coords, SyntheticBlob};
use crate::AppRun;
use charm_core::{
    ArrayProxy, Callback, Chare, Ctx, Ix, LbTrigger, MachineConfig, RedOp, RedValue, Runtime,
    Strategy, SysEvent,
};
use charm_pup::{Pup, Puper};

const FLOPS_PER_CELL: f64 = 40.0;
const GHOST_BYTES_PER_FACE_CELL: u64 = 8;

/// Faces in axis/direction order: −x, +x, −y, +y, −z, +z.
const FACES: [(usize, i64); 6] = [(0, -1), (0, 1), (1, -1), (1, 1), (2, -1), (2, 1)];

#[allow(dead_code)] // geometry helper kept for symmetry with FACES
fn opposite(face: usize) -> usize {
    face ^ 1
}

/// AMR3D configuration.
pub struct AmrConfig {
    /// Machine.
    pub machine: MachineConfig,
    /// Initial uniform refinement depth (blocks = 8^depth).
    pub min_depth: u8,
    /// Maximum refinement depth (paper: dynamic range 2–9).
    pub max_depth: u8,
    /// Cells per block side (fixed-size blocks).
    pub block_side: u32,
    /// Steps to run.
    pub steps: u64,
    /// Restructure the mesh every k steps.
    pub regrid_every: u64,
    /// Feature front position at step 0 (fraction of the domain).
    pub front_start: f64,
    /// Front speed, domain fractions per step (0.0 = stationary feature —
    /// a persistent hotspot; with monotone refinement a *moving* front
    /// eventually refines everything and the imbalance evens out).
    pub front_speed: f64,
    /// AtSync LB right after each regrid?
    pub lb_after_regrid: bool,
    /// Strategy (DistributedLB in the paper).
    pub strategy: Option<Box<dyn Strategy>>,
    /// Take an in-memory checkpoint at this step.
    pub ckpt_at: Option<u64>,
    /// Seed.
    pub seed: u64,
}

impl Default for AmrConfig {
    fn default() -> Self {
        AmrConfig {
            machine: MachineConfig::homogeneous(8),
            min_depth: 2,
            max_depth: 4,
            block_side: 8,
            steps: 8,
            regrid_every: 3,
            front_start: 0.0,
            front_speed: 0.125,
            lb_after_regrid: false,
            strategy: None,
            ckpt_at: None,
            seed: 42,
        }
    }
}

/// Region of a block in finest-lattice units.
fn region(ix: &Ix, max_depth: u8) -> ([u64; 3], u64) {
    let Ix::Bits { bits, len } = ix else {
        panic!("AMR block index must be Bits, got {ix}");
    };
    let d = len / 3;
    let c = oct_coords(*bits, d);
    let scale = 1u64 << (max_depth - d);
    ([c[0] as u64 * scale, c[1] as u64 * scale, c[2] as u64 * scale], scale)
}

fn depth_of(ix: &Ix) -> u8 {
    match ix {
        Ix::Bits { len, .. } => len / 3,
        other => panic!("not a block index: {other}"),
    }
}

/// Is `b` face-adjacent to `a` across `a`'s face `f`, with tangential
/// overlap? (Non-periodic domain.)
fn adjacent_across(a: &Ix, f: usize, b: &Ix, max_depth: u8) -> bool {
    let (alo, asz) = region(a, max_depth);
    let (blo, bsz) = region(b, max_depth);
    let (axis, dir) = FACES[f];
    let plane_ok = if dir > 0 {
        alo[axis] + asz == blo[axis]
    } else {
        blo[axis] + bsz == alo[axis]
    };
    if !plane_ok {
        return false;
    }
    for t in 0..3 {
        if t == axis {
            continue;
        }
        let lo = alo[t].max(blo[t]);
        let hi = (alo[t] + asz).min(blo[t] + bsz);
        if lo >= hi {
            return false;
        }
    }
    true
}

/// The advected feature: a planar front at fraction `front_frac` of the
/// domain; blocks whose x-range is near it want depth `max_depth`.
fn desired_depth(ix: &Ix, front_frac: f64, min_depth: u8, max_depth: u8) -> u8 {
    let (lo, sz) = region(ix, max_depth);
    let domain = 1u64 << max_depth;
    let front = front_frac * domain as f64;
    let center = lo[0] as f64 + sz as f64 / 2.0;
    let dist = (center - front).abs() / domain as f64;
    if dist < 0.10 {
        max_depth
    } else if dist < 0.22 {
        ((min_depth + max_depth) / 2).max(min_depth)
    } else {
        min_depth
    }
}

// ---------------------------------------------------------------------------

#[derive(Default)]
enum BlockMsg {
    /// Run advection step `s`.
    Step(u64),
    /// Ghost-face data for step `s`.
    Ghost { step: u64 },
    /// Begin the decision phase for regrid round `r` at step `s`.
    Decide { step: u64 },
    /// A face neighbor (at depth `from_depth`) will refine.
    RefineNotice { from_depth: u8 },
    /// Begin the share/apply phase.
    #[default]
    Share,
    /// A face neighbor's final decision.
    Decision { from: Ix, will_refine: bool },
}

impl Pup for BlockMsg {
    fn pup(&mut self, p: &mut Puper) {
        let mut t: u8 = match self {
            BlockMsg::Step(_) => 0,
            BlockMsg::Ghost { .. } => 1,
            BlockMsg::Decide { .. } => 2,
            BlockMsg::RefineNotice { .. } => 3,
            BlockMsg::Share => 4,
            BlockMsg::Decision { .. } => 5,
        };
        p.p(&mut t);
        if p.is_unpacking() {
            *self = match t {
                0 => BlockMsg::Step(0),
                1 => BlockMsg::Ghost { step: 0 },
                2 => BlockMsg::Decide { step: 0 },
                3 => BlockMsg::RefineNotice { from_depth: 0 },
                4 => BlockMsg::Share,
                5 => BlockMsg::Decision {
                    from: Ix::ROOT,
                    will_refine: false,
                },
                x => panic!("bad BlockMsg {x}"),
            };
        }
        match self {
            BlockMsg::Step(s) | BlockMsg::Ghost { step: s } | BlockMsg::Decide { step: s } => {
                p.p(s)
            }
            BlockMsg::RefineNotice { from_depth } => p.p(from_depth),
            BlockMsg::Share => {}
            BlockMsg::Decision { from, will_refine } => {
                p.p(from);
                p.p(will_refine);
            }
        }
    }
}


impl Clone for BlockMsg {
    fn clone(&self) -> Self {
        match self {
            BlockMsg::Step(s) => BlockMsg::Step(*s),
            BlockMsg::Ghost { step } => BlockMsg::Ghost { step: *step },
            BlockMsg::Decide { step } => BlockMsg::Decide { step: *step },
            BlockMsg::RefineNotice { from_depth } => BlockMsg::RefineNotice {
                from_depth: *from_depth,
            },
            BlockMsg::Share => BlockMsg::Share,
            BlockMsg::Decision { from, will_refine } => BlockMsg::Decision {
                from: *from,
                will_refine: *will_refine,
            },
        }
    }
}

#[derive(Default)]
struct Block {
    /// Our own index (kept in state for local index math).
    me: Ix,
    max_depth: u8,
    min_depth: u8,
    block_side: u32,
    front_start: f64,
    front_speed: f64,
    step: u64,
    /// Face-neighbor lists, one per FACES entry.
    neighbors: Vec<Vec<Ix>>,
    ghosts_seen: u32,
    early_ghosts: u32,
    data: SyntheticBlob,
    // --- regrid state ---
    will_refine: bool,
    decide_step: u64,
    decisions_seen: u32,
    refined_neighbors: Vec<Ix>,
    arrays: (ArrayProxy<Block>, ArrayProxy<Driver>),
    lb_pending: bool,
}

impl Pup for Block {
    fn pup(&mut self, p: &mut Puper) {
        charm_pup::pup_all!(
            p;
            self.me, self.max_depth, self.min_depth, self.block_side,
            self.front_start, self.front_speed, self.step, self.neighbors, self.ghosts_seen,
            self.early_ghosts, self.data, self.will_refine, self.decide_step,
            self.decisions_seen, self.refined_neighbors, self.arrays.0,
            self.arrays.1, self.lb_pending
        );
    }
}

impl Block {
    fn blocks(&self) -> ArrayProxy<Block> {
        self.arrays.0
    }
    fn driver_cb(&self) -> Callback {
        Callback::ToChare {
            array: self.arrays.1.id(),
            ix: Ix::i1(0),
        }
    }

    fn expected_ghosts(&self) -> u32 {
        self.neighbors.iter().map(|v| v.len() as u32).sum()
    }

    fn all_neighbors(&self) -> Vec<Ix> {
        let mut v: Vec<Ix> = self.neighbors.iter().flatten().copied().collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    fn start_step(&mut self, ctx: &mut Ctx<'_>) {
        let face_bytes = self.block_side as u64 * self.block_side as u64 * GHOST_BYTES_PER_FACE_CELL;
        let blocks = self.blocks();
        for (f, list) in self.neighbors.iter().enumerate() {
            let _ = f;
            for nb in list {
                ctx.send(blocks, *nb, BlockMsg::Ghost { step: self.step });
            }
        }
        let _ = face_bytes; // ghost size is carried by the message model
        self.maybe_compute(ctx);
    }

    fn maybe_compute(&mut self, ctx: &mut Ctx<'_>) {
        if self.ghosts_seen < self.expected_ghosts() {
            return;
        }
        self.ghosts_seen = 0;
        let s = self.block_side as f64;
        ctx.work(s * s * s * FLOPS_PER_CELL);
        self.step += 1;
        ctx.contribute(
            self.blocks(),
            self.step as u32,
            RedValue::I64(1),
            RedOp::Sum,
            self.driver_cb(),
        );
    }

    // --- regrid: decision phase -------------------------------------------

    fn my_depth(&self) -> u8 {
        depth_of(&self.me)
    }

    fn decide(&mut self, step: u64, ctx: &mut Ctx<'_>) {
        self.decide_step = step;
        self.decisions_seen = 0;
        self.refined_neighbors.clear();
        let front = self.front_start + self.front_speed * step as f64;
        let want = desired_depth(&self.me, front, self.min_depth, self.max_depth);
        if want > self.my_depth() && self.my_depth() < self.max_depth {
            self.announce_refine(ctx);
        }
    }

    fn announce_refine(&mut self, ctx: &mut Ctx<'_>) {
        if self.will_refine {
            return;
        }
        self.will_refine = true;
        let d = self.my_depth();
        let blocks = self.blocks();
        for nb in self.all_neighbors() {
            ctx.send(blocks, nb, BlockMsg::RefineNotice { from_depth: d });
        }
    }

    fn on_refine_notice(&mut self, from_depth: u8, ctx: &mut Ctx<'_>) {
        // 2:1: a coarser neighbor of a refiner must refine too.
        if self.my_depth() < from_depth && self.my_depth() < self.max_depth {
            self.announce_refine(ctx);
        }
    }

    // --- regrid: share/apply phase ------------------------------------------

    fn share(&mut self, ctx: &mut Ctx<'_>) {
        let blocks = self.blocks();
        let me = self.me;
        let wr = self.will_refine;
        for nb in self.all_neighbors() {
            ctx.send(
                blocks,
                nb,
                BlockMsg::Decision {
                    from: me,
                    will_refine: wr,
                },
            );
        }
        self.maybe_apply(ctx);
    }

    fn on_decision(&mut self, from: Ix, will_refine: bool, ctx: &mut Ctx<'_>) {
        self.decisions_seen += 1;
        if will_refine {
            self.refined_neighbors.push(from);
        }
        self.maybe_apply(ctx);
    }

    /// Post-regrid entry list for one current neighbor entry, as seen from
    /// a region (`who`) across face `f`.
    fn resolve_entry(&self, who: &Ix, f: usize, entry: &Ix) -> Vec<Ix> {
        if !self.refined_neighbors.contains(entry) {
            return vec![*entry];
        }
        // The entry refines: its children adjacent to `who` across f.
        let mut out = Vec::new();
        for c in 0..8u64 {
            let child = entry.tree_child(c, 3);
            if adjacent_across(who, f, &child, self.max_depth) {
                out.push(child);
            }
        }
        out
    }

    fn maybe_apply(&mut self, ctx: &mut Ctx<'_>) {
        let expected = self.all_neighbors().len() as u32;
        if self.decisions_seen < expected {
            return;
        }
        self.decisions_seen = u32::MAX / 2; // guard against double apply
        let blocks = self.blocks();

        if !self.will_refine {
            // Stay: rewrite neighbor lists under neighbors' refinements.
            let me = self.me;
            for f in 0..6 {
                let old = std::mem::take(&mut self.neighbors[f]);
                let mut new = Vec::with_capacity(old.len());
                for e in &old {
                    new.extend(self.resolve_entry(&me, f, e));
                }
                new.sort_unstable();
                new.dedup();
                self.neighbors[f] = new;
            }
            return;
        }

        // Refine: create 8 children with locally computed neighbor lists.
        let cell_bytes = self.data.len() / 8;
        for c in 0..8u64 {
            let child = self.me.tree_child(c, 3);
            let mut lists: Vec<Vec<Ix>> = vec![Vec::new(); 6];
            for (f, &(axis, dir)) in FACES.iter().enumerate() {
                // Sibling on the internal side?
                let bit = 1u64 << axis;
                let inward = (c & bit != 0) as i64; // 1 = high half on axis
                let internal = (dir < 0 && inward == 1) || (dir > 0 && inward == 0);
                if internal {
                    lists[f].push(self.me.tree_child(c ^ bit, 3));
                    continue;
                }
                // External: parent's neighbors on f, refined per decisions,
                // filtered to this child's quadrant.
                for e in &self.neighbors[f] {
                    for r in self.resolve_entry(&child, f, e) {
                        if adjacent_across(&child, f, &r, self.max_depth) {
                            lists[f].push(r);
                        }
                    }
                }
                lists[f].sort_unstable();
                lists[f].dedup();
            }
            ctx.insert(
                blocks,
                child,
                Block {
                    me: child,
                    max_depth: self.max_depth,
                    min_depth: self.min_depth,
                    block_side: self.block_side,
                    front_start: self.front_start,
                    front_speed: self.front_speed,
                    step: self.step,
                    neighbors: lists,
                    data: SyntheticBlob::new(cell_bytes),
                    arrays: self.arrays,
                    ..Block::default()
                },
                Some(ctx.my_pe()), // children inherit the parent's PE
            );
        }
        ctx.destroy_me();
    }
}

impl Chare for Block {
    type Msg = BlockMsg;

    fn on_message(&mut self, msg: BlockMsg, ctx: &mut Ctx<'_>) {
        match msg {
            BlockMsg::Step(s) => {
                debug_assert_eq!(s, self.step);
                self.ghosts_seen += std::mem::take(&mut self.early_ghosts);
                self.start_step(ctx);
            }
            BlockMsg::Ghost { step } => {
                if step == self.step {
                    self.ghosts_seen += 1;
                    self.maybe_compute(ctx);
                } else {
                    debug_assert_eq!(step, self.step + 1, "ghost from the far future");
                    self.early_ghosts += 1;
                }
            }
            BlockMsg::Decide { step } => {
                self.will_refine = false;
                self.decide(step, ctx);
            }
            BlockMsg::RefineNotice { from_depth } => self.on_refine_notice(from_depth, ctx),
            BlockMsg::Share => {
                self.decisions_seen = 0;
                self.share(ctx);
            }
            BlockMsg::Decision { from, will_refine } => {
                self.on_decision(from, will_refine, ctx)
            }
        }
    }

    fn on_event(&mut self, _ev: SysEvent, _ctx: &mut Ctx<'_>) {}
}

// ---------------------------------------------------------------------------

#[derive(Default, Clone, Copy, PartialEq, Debug)]
enum DriverPhase {
    #[default]
    Stepping,
    Deciding,
    Sharing,
    Balancing,
}
charm_pup::impl_pup_unit_enum!(DriverPhase {
    Stepping,
    Deciding,
    Sharing,
    Balancing
});

#[derive(Default)]
struct Driver {
    step: u64,
    steps: u64,
    regrid_every: u64,
    lb_after_regrid: bool,
    ckpt_at: i64,
    phase: DriverPhase,
    blocks: ArrayProxy<Block>,
}

impl Pup for Driver {
    fn pup(&mut self, p: &mut Puper) {
        charm_pup::pup_all!(
            p;
            self.step, self.steps, self.regrid_every, self.lb_after_regrid,
            self.ckpt_at, self.phase, self.blocks
        );
    }
}

impl Driver {
    fn next_step(&mut self, ctx: &mut Ctx<'_>) {
        self.phase = DriverPhase::Stepping;
        ctx.broadcast(self.blocks, BlockMsg::Step(self.step));
    }
}

impl Chare for Driver {
    type Msg = u8;

    fn on_message(&mut self, _m: u8, ctx: &mut Ctx<'_>) {
        self.next_step(ctx);
    }

    fn on_event(&mut self, ev: SysEvent, ctx: &mut Ctx<'_>) {
        match ev {
            SysEvent::Reduction { value, .. } => {
                self.step += 1;
                ctx.log_metric("amr_step", ctx.now().as_secs_f64());
                ctx.log_metric("amr_blocks", value.as_i64() as f64);
                if self.ckpt_at >= 0 && self.step as i64 == self.ckpt_at {
                    ctx.start_mem_checkpoint(ctx.cb_self());
                    return;
                }
                self.after_step(ctx);
            }
            SysEvent::CheckpointDone => self.after_step(ctx),
            SysEvent::QuiescenceDetected => match self.phase {
                DriverPhase::Deciding => {
                    self.phase = DriverPhase::Sharing;
                    ctx.broadcast(self.blocks, BlockMsg::Share);
                    ctx.request_quiescence(ctx.cb_self());
                }
                DriverPhase::Sharing => {
                    ctx.log_metric("amr_regrid_done", ctx.now().as_secs_f64());
                    if self.lb_after_regrid {
                        // The paper pairs restructuring with a distributed
                        // LB round to diffuse the freshly inserted blocks.
                        ctx.request_lb();
                    }
                    self.next_step(ctx);
                }
                other => panic!("unexpected QD in phase {other:?}"),
            },
            SysEvent::Restarted { .. } => {
                self.phase = DriverPhase::Stepping;
                ctx.broadcast(self.blocks, BlockMsg::Step(self.step));
            }
            _ => {}
        }
    }
}

impl Driver {
    fn after_step(&mut self, ctx: &mut Ctx<'_>) {
        if self.step >= self.steps {
            ctx.exit();
            return;
        }
        if self.regrid_every > 0 && self.step.is_multiple_of(self.regrid_every) {
            self.phase = DriverPhase::Deciding;
            ctx.broadcast(self.blocks, BlockMsg::Decide { step: self.step });
            ctx.request_quiescence(ctx.cb_self());
        } else {
            self.next_step(ctx);
        }
    }
}

// ---------------------------------------------------------------------------

/// Run AMR3D; returns (AppRun, final block count, runtime).
pub fn run_with_runtime(mut config: AmrConfig) -> (AppRun, usize, Runtime) {
    let mut b = Runtime::builder(std::mem::replace(
        &mut config.machine,
        MachineConfig::homogeneous(1),
    ))
    .seed(config.seed)
    .lb_trigger(LbTrigger::AtSync);
    let has_strategy = config.strategy.is_some();
    if let Some(s) = config.strategy.take() {
        b = b.strategy(s);
    }
    let mut rt = b.build();
    let blocks: ArrayProxy<Block> = rt.create_array("amr_blocks");
    let driver: ArrayProxy<Driver> = rt.create_array("amr_driver");

    let d0 = config.min_depth;
    let side = 1u32 << d0;
    let pes = rt.num_pes();
    let total = (side as usize).pow(3);
    let mut linear = 0usize;
    for x in 0..side {
        for y in 0..side {
            for z in 0..side {
                let me = Ix::Bits {
                    bits: oct_bits([x, y, z], d0),
                    len: 3 * d0,
                };
                // Initial face neighbors: same-depth lattice (non-periodic).
                let mut lists: Vec<Vec<Ix>> = vec![Vec::new(); 6];
                for (f, &(axis, dir)) in FACES.iter().enumerate() {
                    let mut c = [x as i64, y as i64, z as i64];
                    c[axis] += dir;
                    if c[axis] < 0 || c[axis] >= side as i64 {
                        continue;
                    }
                    lists[f].push(Ix::Bits {
                        bits: oct_bits([c[0] as u32, c[1] as u32, c[2] as u32], d0),
                        len: 3 * d0,
                    });
                }
                let pe = linear * pes / total;
                linear += 1;
                rt.insert(
                    blocks,
                    me,
                    Block {
                        me,
                        max_depth: config.max_depth,
                        min_depth: config.min_depth,
                        block_side: config.block_side,
                        front_start: config.front_start,
                        front_speed: config.front_speed,
                        neighbors: lists,
                        data: SyntheticBlob::new(
                            (config.block_side as u64).pow(3) * 8,
                        ),
                        arrays: (blocks, driver),
                        ..Block::default()
                    },
                    Some(pe),
                );
            }
        }
    }
    rt.insert(
        driver,
        Ix::i1(0),
        Driver {
            steps: config.steps,
            regrid_every: config.regrid_every,
            lb_after_regrid: config.lb_after_regrid && has_strategy,
            ckpt_at: config.ckpt_at.map(|v| v as i64).unwrap_or(-1),
            blocks,
            ..Driver::default()
        },
        Some(0),
    );

    // RTS-triggered LB after regrids is modeled by periodic RTS LB.
    if config.lb_after_regrid && has_strategy {
        rt.set_at_sync(blocks, true);
    }

    rt.send(driver, Ix::i1(0), 0u8);
    let summary = rt.run();
    let run = crate::collect_app_run(&rt, &summary, "amr_step");
    let nblocks = rt.array_len(blocks.id());
    (run, nblocks, rt)
}

/// Run AMR3D (convenience).
pub fn run(config: AmrConfig) -> AppRun {
    run_with_runtime(config).0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_adjacency() {
        // Two depth-1 blocks side by side on x.
        let a = Ix::Bits {
            bits: oct_bits([0, 0, 0], 1),
            len: 3,
        };
        let b = Ix::Bits {
            bits: oct_bits([1, 0, 0], 1),
            len: 3,
        };
        assert!(adjacent_across(&a, 1, &b, 4)); // +x
        assert!(adjacent_across(&b, 0, &a, 4)); // -x
        assert!(!adjacent_across(&a, 0, &b, 4));
        assert!(!adjacent_across(&a, 3, &b, 4));
    }

    #[test]
    fn fine_coarse_adjacency() {
        // A depth-2 child against a depth-1 block.
        let coarse = Ix::Bits {
            bits: oct_bits([1, 0, 0], 1),
            len: 3,
        };
        let fine = Ix::Bits {
            bits: oct_bits([1, 0, 0], 2),
            len: 6,
        }; // x in [4,6) at maxd=3... depends on depth scale
        let _ = fine;
        // child (1,0,0) at depth 2 occupies x ∈ [2,4) of 8; coarse (1,0,0)
        // at depth 1 occupies x ∈ [4,8): they touch at x=4 with overlap in
        // y,z ∈ [0,2) vs [0,4) → adjacent across +x of the fine block.
        let fine = Ix::Bits {
            bits: oct_bits([1, 0, 0], 2),
            len: 6,
        };
        assert!(adjacent_across(&fine, 1, &coarse, 3));
        assert!(adjacent_across(&coarse, 0, &fine, 3));
    }

    #[test]
    fn runs_and_grows_the_mesh() {
        let (run, nblocks, rt) = run_with_runtime(AmrConfig::default());
        assert_eq!(run.step_times.len(), 8);
        let initial = 8usize.pow(2);
        assert!(
            nblocks > initial,
            "refinement must have inserted blocks: {nblocks} vs {initial}"
        );
        // Regrids happened and were journaled.
        assert!(!rt.metric("amr_regrid_done").is_empty());
        // Block-count metric is non-decreasing (monotone refinement).
        let counts: Vec<f64> = rt.metric("amr_blocks").iter().map(|&(_, v)| v).collect();
        assert!(counts.windows(2).all(|w| w[1] >= w[0]), "{counts:?}");
    }

    #[test]
    fn two_to_one_balance_is_maintained() {
        // After the run, any two face-adjacent blocks differ by ≤1 depth.
        let (_r, _n, rt) = run_with_runtime(AmrConfig {
            steps: 7,
            regrid_every: 2,
            ..AmrConfig::default()
        });
        let blocks_id = rt.array_id("amr_blocks").unwrap();
        let all = rt.array_indices(blocks_id);
        for a in &all {
            for b in &all {
                if a == b {
                    continue;
                }
                for f in 0..6 {
                    if adjacent_across(a, f, b, 4) {
                        let (da, db) = (depth_of(a), depth_of(b));
                        assert!(
                            da.abs_diff(db) <= 1,
                            "2:1 violated: {a}({da}) vs {b}({db})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn leaves_tile_the_domain_exactly() {
        // No overlaps, no holes: Σ volumes = domain volume and regions are
        // pairwise disjoint.
        let (_r, _n, rt) = run_with_runtime(AmrConfig::default());
        let blocks_id = rt.array_id("amr_blocks").unwrap();
        let all = rt.array_indices(blocks_id);
        let maxd = 4u8;
        let domain = 1u64 << maxd;
        let mut vol = 0u64;
        for ix in &all {
            let (_lo, sz) = region(ix, maxd);
            vol += sz * sz * sz;
        }
        assert_eq!(vol, domain.pow(3), "leaves must tile the domain");
    }

    #[test]
    fn distributed_lb_reduces_step_time_after_refinement() {
        let mk = |lb: bool| AmrConfig {
            machine: MachineConfig::homogeneous(8),
            steps: 10,
            regrid_every: 2,
            max_depth: 4,
            front_start: 0.3,
            front_speed: 0.0, // stationary hotspot: persistent imbalance
            lb_after_regrid: lb,
            strategy: lb.then(|| {
                Box::new(charm_lb::DistributedLb::default()) as Box<dyn Strategy>
            }),
            ..AmrConfig::default()
        };
        let nolb = run(mk(false));
        let lb = run(mk(true));
        let tail = |r: &AppRun| {
            let d = r.step_durations();
            d[d.len() - 3..].iter().sum::<f64>() / 3.0
        };
        assert!(
            tail(&lb) < tail(&nolb),
            "children pile on parents' PEs; LB must diffuse: lb={:.5}s nolb={:.5}s",
            tail(&lb),
            tail(&nolb)
        );
    }

    #[test]
    fn checkpoint_during_amr_records_metrics() {
        let (_run, _n, rt) = run_with_runtime(AmrConfig {
            ckpt_at: Some(2),
            ..AmrConfig::default()
        });
        assert_eq!(rt.metric("ckpt_time_s").len(), 1);
    }

    #[test]
    fn deterministic() {
        let a = run(AmrConfig::default());
        let b = run(AmrConfig::default());
        assert_eq!(a.step_times, b.step_times);
    }
}
