//! ChaNGa-like phase-structured cosmology step (§IV-C, Fig. 13).
//!
//! ChaNGa's time step decomposes into Domain Decomposition (a global
//! particle sort/exchange), Tree Build (local construction plus boundary
//! merging), and Gravity (the dominant, clustered force computation), with
//! Load Balancing rounds in between. Fig. 13 reports the per-phase time
//! breakdown at scale. This mini-app reproduces that phase structure over
//! tree pieces, with per-phase work/communication models calibrated to the
//! same proportions (gravity ≫ DD > TB ≫ LB at moderate scale, with the
//! collectives-heavy phases growing relatively at large P).

use crate::util::gaussian_density;
use charm_core::{
    ArrayProxy, Callback, Chare, Ctx, Ix, MachineConfig, RedOp, RedValue, Runtime, Strategy,
    SysEvent,
};
use charm_pup::{Pup, Puper};

const FLOPS_GRAVITY_PER_PARTICLE: f64 = 900.0;
const FLOPS_DD_PER_PARTICLE: f64 = 40.0;
const FLOPS_TB_PER_PARTICLE: f64 = 60.0;
const BYTES_PER_PARTICLE: u64 = 36;

/// Phases of one ChaNGa step, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Domain decomposition: particle exchange toward spatial owners.
    DD,
    /// Tree build: local construction + boundary merge with neighbors.
    TB,
    /// Gravity: the dominant force computation.
    Gravity,
}

impl Phase {
    const ALL: [Phase; 3] = [Phase::DD, Phase::TB, Phase::Gravity];

    fn tag_base(self) -> u32 {
        match self {
            Phase::DD => 0,
            Phase::TB => 1,
            Phase::Gravity => 2,
        }
    }
}

/// ChaNGa configuration.
pub struct ChangaConfig {
    /// Machine.
    pub machine: MachineConfig,
    /// Tree pieces (≥ PEs; over-decomposed).
    pub pieces: usize,
    /// Mean particles per piece.
    pub particles_per_piece: usize,
    /// Clustering strength.
    pub clustering: f64,
    /// Steps.
    pub steps: u64,
    /// AtSync LB every k steps (0 = never).
    pub lb_every: u64,
    /// Strategy.
    pub strategy: Option<Box<dyn Strategy>>,
    /// Seed.
    pub seed: u64,
}

impl Default for ChangaConfig {
    fn default() -> Self {
        ChangaConfig {
            machine: MachineConfig::homogeneous(8),
            pieces: 64,
            particles_per_piece: 300,
            clustering: 6.0,
            steps: 6,
            lb_every: 0,
            strategy: None,
            seed: 42,
        }
    }
}

/// Per-step phase timings (seconds).
#[derive(Debug, Clone, Default)]
pub struct PhaseBreakdown {
    /// Mean domain-decomposition phase time, seconds.
    pub dd: f64,
    /// Mean tree-build phase time, seconds.
    pub tb: f64,
    /// Mean gravity phase time, seconds.
    pub gravity: f64,
    /// Mean per-step load-balancing cost, seconds.
    pub lb: f64,
    /// Mean total step time, seconds.
    pub total: f64,
}

enum PieceMsg {
    RunPhase { step: u64, phase: u8 },
    Particles { bytes: u64 },
}

impl Pup for PieceMsg {
    fn pup(&mut self, p: &mut Puper) {
        let mut t: u8 = match self {
            PieceMsg::RunPhase { .. } => 0,
            PieceMsg::Particles { .. } => 1,
        };
        p.p(&mut t);
        if p.is_unpacking() {
            *self = match t {
                0 => PieceMsg::RunPhase { step: 0, phase: 0 },
                _ => PieceMsg::Particles { bytes: 0 },
            };
        }
        match self {
            PieceMsg::RunPhase { step, phase } => {
                p.p(step);
                p.p(phase);
            }
            PieceMsg::Particles { bytes } => p.p(bytes),
        }
    }
}

impl Default for PieceMsg {
    fn default() -> Self {
        PieceMsg::Particles { bytes: 0 }
    }
}

impl Clone for PieceMsg {
    fn clone(&self) -> Self {
        match self {
            PieceMsg::RunPhase { step, phase } => PieceMsg::RunPhase {
                step: *step,
                phase: *phase,
            },
            PieceMsg::Particles { bytes } => PieceMsg::Particles { bytes: *bytes },
        }
    }
}

#[derive(Default)]
struct Piece {
    idx: u64,
    pieces_total: u64,
    n: u32,
    mean_n: u64,
    clustering: f64,
    lb_every: u64,
    driver: ArrayProxy<Driver>,
    pieces: ArrayProxy<Piece>,
    waiting_resume: bool,
    resume_step: u64,
}

impl Pup for Piece {
    fn pup(&mut self, p: &mut Puper) {
        charm_pup::pup_all!(
            p;
            self.idx, self.pieces_total, self.n, self.mean_n, self.clustering,
            self.lb_every, self.driver, self.pieces, self.waiting_resume,
            self.resume_step
        );
    }
}

impl Piece {
    fn refresh_population(&mut self, step: u64) {
        let f = self.idx as f64 / self.pieces_total as f64;
        let pos = [f.fract(), (f * 7.13).fract(), (f * 3.77).fract()];
        let t = step as f64 * 0.01;
        let dens = gaussian_density(
            pos,
            [(0.4 + t).fract(), 0.5, 0.5],
            0.15,
            1.0,
            self.clustering - 1.0,
        );
        self.n = (self.mean_n as f64 * dens / 1.5).round().max(1.0) as u32;
    }

    fn done(&mut self, step: u64, phase: Phase, ctx: &mut Ctx<'_>) {
        ctx.contribute(
            self.pieces,
            step as u32 * 4 + phase.tag_base() + 1,
            RedValue::I64(self.n as i64),
            RedOp::Sum,
            Callback::ToChare {
                array: self.driver.id(),
                ix: Ix::i1(0),
            },
        );
    }
}

impl Chare for Piece {
    type Msg = PieceMsg;

    fn on_message(&mut self, msg: PieceMsg, ctx: &mut Ctx<'_>) {
        match msg {
            PieceMsg::RunPhase { step, phase } => {
                let ph = Phase::ALL[phase as usize];
                match ph {
                    Phase::DD => {
                        self.refresh_population(step);
                        // Exchange a slice of particles with two "owner"
                        // pieces (the sorted redistribution's comm pattern).
                        ctx.work(self.n as f64 * FLOPS_DD_PER_PARTICLE);
                        let moved = self.n as u64 / 8;
                        for k in 1..=2u64 {
                            let dst = (self.idx + k * 7919) % self.pieces_total;
                            ctx.send(
                                self.pieces,
                                Ix::i1(dst as i64),
                                PieceMsg::Particles {
                                    bytes: moved * BYTES_PER_PARTICLE,
                                },
                            );
                        }
                        self.done(step, ph, ctx);
                    }
                    Phase::TB => {
                        ctx.work(self.n as f64 * FLOPS_TB_PER_PARTICLE);
                        self.done(step, ph, ctx);
                    }
                    Phase::Gravity => {
                        // O(n log N): the log factor is in the *global*
                        // particle count, constant across a strong-scaling
                        // sweep — folded into FLOPS_GRAVITY_PER_PARTICLE.
                        let n = self.n as f64;
                        ctx.work(n * FLOPS_GRAVITY_PER_PARTICLE * 2.5);
                        let lb_step =
                            self.lb_every > 0 && (step + 1) % self.lb_every == 0;
                        if lb_step {
                            self.waiting_resume = true;
                            self.resume_step = step;
                            ctx.at_sync();
                        } else {
                            self.done(step, ph, ctx);
                        }
                    }
                }
            }
            PieceMsg::Particles { .. } => {
                // Payload accounted by the message size; population model
                // is deterministic, so nothing to update here.
            }
        }
    }

    fn on_event(&mut self, ev: SysEvent, ctx: &mut Ctx<'_>) {
        if matches!(ev, SysEvent::ResumeFromSync) && self.waiting_resume {
            self.waiting_resume = false;
            self.done(self.resume_step, Phase::Gravity, ctx);
        }
    }

    fn load_hint(&self) -> f64 {
        (self.n as f64).max(1.0)
    }
}

#[derive(Default)]
struct Driver {
    step: u64,
    steps: u64,
    phase: u8,
    phase_started: f64,
    pieces: ArrayProxy<Piece>,
}

impl Pup for Driver {
    fn pup(&mut self, p: &mut Puper) {
        charm_pup::pup_all!(p; self.step, self.steps, self.phase, self.phase_started, self.pieces);
    }
}

impl Driver {
    fn launch_phase(&mut self, ctx: &mut Ctx<'_>) {
        self.phase_started = ctx.now().as_secs_f64();
        ctx.broadcast(
            self.pieces,
            PieceMsg::RunPhase {
                step: self.step,
                phase: self.phase,
            },
        );
    }
}

impl Chare for Driver {
    type Msg = u8;

    fn on_message(&mut self, _m: u8, ctx: &mut Ctx<'_>) {
        self.launch_phase(ctx);
    }

    fn on_event(&mut self, ev: SysEvent, ctx: &mut Ctx<'_>) {
        if let SysEvent::Reduction { .. } = ev {
            let ph = Phase::ALL[self.phase as usize];
            let dt = ctx.now().as_secs_f64() - self.phase_started;
            let name = match ph {
                Phase::DD => "changa_dd",
                Phase::TB => "changa_tb",
                Phase::Gravity => "changa_gravity",
            };
            ctx.log_metric(name, dt);
            self.phase += 1;
            if (self.phase as usize) < Phase::ALL.len() {
                self.launch_phase(ctx);
                return;
            }
            self.phase = 0;
            self.step += 1;
            ctx.log_metric("changa_step", ctx.now().as_secs_f64());
            if self.step < self.steps {
                self.launch_phase(ctx);
            } else {
                ctx.exit();
            }
        }
    }
}

/// Run the mini-app; returns mean per-step phase breakdown.
pub fn run(mut config: ChangaConfig) -> PhaseBreakdown {
    let mut b = Runtime::builder(std::mem::replace(
        &mut config.machine,
        MachineConfig::homogeneous(1),
    ))
    .seed(config.seed);
    if let Some(s) = config.strategy.take() {
        b = b.strategy(s);
    }
    let mut rt = b.build();
    let pieces: ArrayProxy<Piece> = rt.create_array("changa_pieces");
    let driver: ArrayProxy<Driver> = rt.create_array("changa_driver");
    rt.set_at_sync(pieces, config.lb_every > 0);

    let pes = rt.num_pes();
    for i in 0..config.pieces {
        let mut piece = Piece {
            idx: i as u64,
            pieces_total: config.pieces as u64,
            mean_n: config.particles_per_piece as u64,
            clustering: config.clustering,
            lb_every: config.lb_every,
            driver,
            pieces,
            ..Piece::default()
        };
        piece.refresh_population(0);
        rt.insert(pieces, Ix::i1(i as i64), piece, Some(i * pes / config.pieces));
    }
    rt.insert(
        driver,
        Ix::i1(0),
        Driver {
            steps: config.steps,
            pieces,
            ..Driver::default()
        },
        Some(0),
    );
    rt.send(driver, Ix::i1(0), 0u8);
    rt.run();

    let mean = |name: &str| {
        let v = rt.metric(name);
        if v.is_empty() {
            0.0
        } else {
            v.iter().map(|&(_, x)| x).sum::<f64>() / v.len() as f64
        }
    };
    let lb: f64 = rt.lb_rounds().iter().map(|r| r.cost_s).sum::<f64>()
        / rt.metric("changa_step").len().max(1) as f64;
    let steps = rt.metric("changa_step");
    let total = if steps.len() >= 2 {
        (steps[steps.len() - 1].0 - steps[0].0) / (steps.len() - 1) as f64
    } else {
        steps.first().map(|&(t, _)| t).unwrap_or(0.0)
    };
    PhaseBreakdown {
        dd: mean("changa_dd"),
        tb: mean("changa_tb"),
        gravity: mean("changa_gravity"),
        lb,
        total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gravity_dominates_the_breakdown() {
        let b = run(ChangaConfig::default());
        assert!(b.gravity > b.dd, "gravity {:.5} > dd {:.5}", b.gravity, b.dd);
        assert!(b.gravity > b.tb, "gravity {:.5} > tb {:.5}", b.gravity, b.tb);
        assert!(b.total > 0.0);
    }

    #[test]
    fn phases_sum_close_to_total() {
        let b = run(ChangaConfig::default());
        let sum = b.dd + b.tb + b.gravity + b.lb;
        assert!(
            sum <= b.total * 1.15 && sum >= b.total * 0.6,
            "sum={sum:.5} total={:.5}",
            b.total
        );
    }

    #[test]
    fn lb_cost_appears_when_enabled() {
        let b = run(ChangaConfig {
            lb_every: 2,
            strategy: Some(Box::new(charm_lb::GreedyLb)),
            ..ChangaConfig::default()
        });
        assert!(b.lb > 0.0, "LB rounds must be accounted");
    }

    #[test]
    fn deterministic() {
        let a = run(ChangaConfig::default());
        let b = run(ChangaConfig::default());
        assert_eq!(a.total, b.total);
        assert_eq!(a.gravity, b.gravity);
    }
}
