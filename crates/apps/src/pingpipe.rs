//! Pipelined ping — the introspective-control-system demo (§III-E, Fig. 6).
//!
//! A fixed-size transfer between two PEs is split into `pipeline_messages`
//! chunks. Few chunks → the whole payload rides one serialized transfer;
//! many chunks → per-message overheads dominate. The optimum is interior,
//! and the runtime's control system finds it from step-time feedback alone:
//! the application merely registers the control point and reports its step
//! times.

use crate::util::SyntheticBlob;
use charm_core::{ArrayProxy, Chare, Ctx, Ix, MachineConfig, Runtime, SysEvent};
use charm_pup::{Pup, Puper};

/// Name of the registered control point (as in the paper's ping benchmark).
pub const PIPELINE_CP: &str = "pipeline_messages";

/// Configuration for a pipelined-ping run.
pub struct PingConfig {
    /// Machine (the endpoints use PE 0 and the last PE).
    pub machine: MachineConfig,
    /// Total bytes transferred per step.
    pub payload: u64,
    /// Steps to run (each step = one full transfer + ack).
    pub steps: u64,
    /// Initial pipeline depth and its admissible range.
    pub initial: i64,
    /// Smallest depth the tuner may pick.
    pub min: i64,
    /// Largest depth the tuner may pick.
    pub max: i64,
    /// Whether the introspective tuner is active (false = hold `initial`).
    pub tune: bool,
}

impl Default for PingConfig {
    fn default() -> Self {
        PingConfig {
            machine: MachineConfig::homogeneous(2),
            payload: 256 * 1024,
            steps: 60,
            initial: 1,
            min: 1,
            max: 64,
            tune: true,
        }
    }
}

#[derive(Default)]
enum PingMsg {
    #[default]
    Start,
    Chunk {
        /// Chunks in this step's transfer.
        of: u32,
        /// Payload share of this chunk (drives the wire size).
        blob: SyntheticBlob,
    },
    Ack,
}

impl Pup for PingMsg {
    fn pup(&mut self, p: &mut Puper) {
        let mut t: u8 = match self {
            PingMsg::Start => 0,
            PingMsg::Chunk { .. } => 1,
            PingMsg::Ack => 2,
        };
        p.p(&mut t);
        if p.is_unpacking() {
            *self = match t {
                0 => PingMsg::Start,
                1 => PingMsg::Chunk {
                    of: 0,
                    blob: SyntheticBlob::default(),
                },
                2 => PingMsg::Ack,
                x => panic!("bad PingMsg {x}"),
            };
        }
        if let PingMsg::Chunk { of, blob } = self {
            p.p(of);
            p.p(blob);
        }
    }
}


#[derive(Default)]
struct Pinger {
    is_sender: bool,
    peer: i64,
    payload: u64,
    steps: u64,
    step: u64,
    step_start: f64,
    chunks_seen: u32,
    tune: bool,
    fixed_k: i64,
}

impl Pup for Pinger {
    fn pup(&mut self, p: &mut Puper) {
        charm_pup::pup_all!(
            p;
            self.is_sender, self.peer, self.payload, self.steps, self.step,
            self.step_start, self.chunks_seen, self.tune, self.fixed_k
        );
    }
}

impl Pinger {
    fn begin_step(&mut self, ctx: &mut Ctx<'_>) {
        let me = ArrayProxy::<Pinger>::from_id(ctx.my_id().array);
        let k = if self.tune {
            ctx.control(PIPELINE_CP, self.fixed_k)
        } else {
            self.fixed_k
        }
        .clamp(1, 4096) as u64;
        self.step_start = ctx.now().as_secs_f64();
        ctx.log_metric("pipeline_k", k as f64);
        let per = self.payload / k;
        for _ in 0..k {
            ctx.send(
                me,
                Ix::i1(self.peer),
                PingMsg::Chunk {
                    of: k as u32,
                    blob: SyntheticBlob::new(per),
                },
            );
        }
    }
}

impl Chare for Pinger {
    type Msg = PingMsg;

    fn on_message(&mut self, msg: PingMsg, ctx: &mut Ctx<'_>) {
        let me = ArrayProxy::<Pinger>::from_id(ctx.my_id().array);
        match msg {
            PingMsg::Start => {
                assert!(self.is_sender);
                self.begin_step(ctx);
            }
            PingMsg::Chunk { of, .. } => {
                self.chunks_seen += 1;
                if self.chunks_seen >= of {
                    self.chunks_seen = 0;
                    ctx.send(me, Ix::i1(self.peer), PingMsg::Ack);
                }
            }
            PingMsg::Ack => {
                let dt = ctx.now().as_secs_f64() - self.step_start;
                ctx.log_metric("ping_step", dt);
                if self.tune {
                    ctx.report_objective(dt);
                }
                self.step += 1;
                if self.step < self.steps {
                    self.begin_step(ctx);
                } else {
                    ctx.exit();
                }
            }
        }
    }

    fn on_event(&mut self, _ev: SysEvent, _ctx: &mut Ctx<'_>) {}
}

/// Result of a ping run: per-step times and the pipeline depth trajectory.
#[derive(Debug)]
pub struct PingRun {
    /// Step durations, seconds.
    pub step_times: Vec<f64>,
    /// Pipeline depth used in each step.
    pub pipeline: Vec<f64>,
}

impl PingRun {
    /// Mean of the last `n` step times (converged performance).
    pub fn tail_mean(&self, n: usize) -> f64 {
        let k = self.step_times.len().saturating_sub(n);
        let tail = &self.step_times[k..];
        tail.iter().sum::<f64>() / tail.len().max(1) as f64
    }

    /// The depth the tuner settled on (last step's value).
    pub fn final_depth(&self) -> i64 {
        *self.pipeline.last().unwrap_or(&0.0) as i64
    }
}

/// Run the pipelined ping benchmark.
pub fn run(config: PingConfig) -> PingRun {
    let mut rt = Runtime::builder(config.machine).build();
    if config.tune {
        rt.control_registry()
            .register(PIPELINE_CP, config.min, config.max, config.initial);
    }
    let arr: ArrayProxy<Pinger> = rt.create_array("pingers");
    let last_pe = rt.num_pes() - 1;
    rt.insert(
        arr,
        Ix::i1(0),
        Pinger {
            is_sender: true,
            peer: 1,
            payload: config.payload,
            steps: config.steps,
            tune: config.tune,
            fixed_k: config.initial,
            ..Pinger::default()
        },
        Some(0),
    );
    rt.insert(
        arr,
        Ix::i1(1),
        Pinger {
            is_sender: false,
            peer: 0,
            payload: config.payload,
            tune: false,
            fixed_k: config.initial,
            ..Pinger::default()
        },
        Some(last_pe),
    );
    rt.send(arr, Ix::i1(0), PingMsg::Start);
    rt.run();
    PingRun {
        step_times: rt.metric("ping_step").iter().map(|&(_, v)| v).collect(),
        pipeline: rt.metric("pipeline_k").iter().map(|&(_, v)| v).collect(),
    }
}

/// Sweep fixed pipeline depths (no tuner) — ground truth for the tuner test
/// and for the Fig. 6 ablation.
pub fn sweep(payload: u64, depths: &[i64]) -> Vec<(i64, f64)> {
    depths
        .iter()
        .map(|&k| {
            let r = run(PingConfig {
                payload,
                steps: 6,
                initial: k,
                tune: false,
                ..PingConfig::default()
            });
            (k, r.tail_mean(4))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_depth_has_interior_optimum() {
        let s = sweep(256 * 1024, &[1, 2, 4, 8, 16, 32, 64, 128, 512]);
        let best = s
            .iter()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("non-empty");
        assert!(best.0 > 1 && best.0 < 512, "optimum must be interior: {s:?}");
        let t1 = s[0].1;
        let t_max = s.last().unwrap().1;
        assert!(t1 > best.1 * 1.2, "k=1 too slow: {s:?}");
        assert!(t_max > best.1 * 1.2, "k=512 too slow: {s:?}");
    }

    #[test]
    fn tuner_converges_near_the_optimum() {
        let truth = sweep(256 * 1024, &[1, 2, 4, 8, 16, 24, 32, 48, 64]);
        let best = truth
            .iter()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("non-empty");
        let tuned = run(PingConfig {
            steps: 80,
            ..PingConfig::default()
        });
        // Fig. 6: "able to find the optimal value and stabilize".
        let converged = tuned.tail_mean(10);
        assert!(
            converged < best.1 * 1.3,
            "tuned={converged:.6}s best fixed={:.6}s (k={}) final_depth={}",
            best.1,
            best.0,
            tuned.final_depth()
        );
        assert!(tuned.final_depth() > 1, "must move off the k=1 start");
    }

    #[test]
    fn untuned_run_holds_depth() {
        let r = run(PingConfig {
            steps: 10,
            initial: 7,
            tune: false,
            ..PingConfig::default()
        });
        assert!(r.pipeline.iter().all(|&k| k == 7.0));
        assert_eq!(r.step_times.len(), 10);
    }
}
