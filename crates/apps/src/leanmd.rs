//! LeanMD — molecular dynamics mini-app (§IV-B; Figs 5, 9, 10, 11, 17).
//!
//! The 3-D simulation space is decomposed into a dense 3-D chare array of
//! `Cells` holding atoms, and a sparse 6-D chare array of pairwise
//! `Computes`, one per adjacent cell pair, which perform the cut-off
//! Lennard-Jones force calculations — the structure of NAMD's non-bonded
//! computation. Per step:
//!
//! 1. every cell multicasts its atom coordinates to the computes it
//!    participates in,
//! 2. a compute with both inputs charges `n₁·n₂` pair-interaction flops and
//!    returns forces to its two cells,
//! 3. a cell with all its force messages integrates and contributes to the
//!    step reduction.
//!
//! Load imbalance comes from a (moving) Gaussian density blob: computes
//! near the blob carry quadratically more work. Over-decomposition +
//! measurement-based balancing (HybridLB at scale) is what makes it scale —
//! Fig. 9's "at least 40 %".

use crate::util::{gaussian_density, SyntheticBlob};
use crate::AppRun;
use charm_core::{
    ArrayProxy, Callback, Chare, Ctx, Ix, LbTrigger, MachineConfig, RedOp, RedValue, Runtime,
    SimTime, Strategy, SysEvent,
};
use charm_pup::{Pup, Puper};

/// Bytes of state per atom (position, velocity, force — 8 doubles).
const BYTES_PER_ATOM: u64 = 64;
/// Bytes sent per atom in a coordinate/force message (3 doubles + id).
const WIRE_BYTES_PER_ATOM: u64 = 32;
/// Flops per atom-pair interaction (the usual LJ kernel estimate).
const FLOPS_PER_PAIR: f64 = 26.0;
/// Flops per atom for integration.
const FLOPS_INTEGRATE: f64 = 60.0;

/// LeanMD configuration.
pub struct LeanMdConfig {
    /// The machine.
    pub machine: MachineConfig,
    /// Cells per dimension (cells total = this³).
    pub cells_per_dim: usize,
    /// Average atoms per cell.
    pub atoms_per_cell: usize,
    /// Peak-to-floor density ratio of the Gaussian blob (1.0 = uniform).
    pub density_peak: f64,
    /// Blob drift per step (fraction of the domain) — moving imbalance.
    pub drift_per_step: f64,
    /// Steps to simulate.
    pub steps: u64,
    /// Call AtSync every this many steps (0 = never).
    pub lb_every: u64,
    /// Take an in-memory checkpoint at this step (None = never).
    pub ckpt_at: Option<u64>,
    /// Automatic periodic in-memory checkpointing (None = off).
    pub auto_ckpt: Option<SimTime>,
    /// Inject a PE failure at this virtual time (requires a checkpoint to
    /// recover; kept for single-failure callers — see `failures`).
    pub fail_at: Option<(SimTime, usize)>,
    /// Additional node failures: (virtual time, any PE on the node).
    pub failures: Vec<(SimTime, usize)>,
    /// Spot preemptions: (kill time, any PE on the node, warning lead).
    pub preemptions: Vec<(SimTime, usize, SimTime)>,
    /// Shrink/expand commands: (virtual time, new PE count).
    pub reconfigure: Vec<(SimTime, usize)>,
    /// Closed-loop elastic controller (None = static PE set).
    pub elastic: Option<charm_core::ElasticConfig>,
    /// LB strategy.
    pub strategy: Option<Box<dyn Strategy>>,
    /// Seed.
    pub seed: u64,
    /// Projections-lite tracing (None = off; see `charm_core::trace`).
    pub trace: Option<charm_core::TraceConfig>,
    /// Streaming trace sinks, installed right after the runtime is built —
    /// before any chare exists — so they observe the complete record
    /// stream. Requires `trace` to be set.
    pub trace_sinks: Vec<Box<dyn charm_core::TraceSink>>,
    /// Record a replay log (None = off; see `charm_core::replay`).
    pub record: Option<charm_core::ReplayConfig>,
    /// Schedule perturbation for race hunting (None = off).
    pub perturb: Option<charm_core::PerturbConfig>,
    /// Simulator worker threads (1 = sequential engine).
    pub threads: usize,
    /// Run on the classic (pre-overhaul) engine hot path: binary-heap
    /// event queue, no arena recycling. A/B regression knob.
    pub classic_hotpath: bool,
    /// Force the sharded engine's global-window lockstep fallback instead
    /// of the adaptive per-shard-pair lookahead. A/B regression knob.
    pub global_window: bool,
}

impl Default for LeanMdConfig {
    fn default() -> Self {
        LeanMdConfig {
            threads: 1,
            machine: MachineConfig::homogeneous(8),
            cells_per_dim: 4,
            atoms_per_cell: 60,
            density_peak: 4.0,
            drift_per_step: 0.0,
            steps: 10,
            lb_every: 0,
            ckpt_at: None,
            auto_ckpt: None,
            fail_at: None,
            failures: Vec::new(),
            preemptions: Vec::new(),
            reconfigure: Vec::new(),
            elastic: None,
            strategy: None,
            seed: 42,
            trace: None,
            trace_sinks: Vec::new(),
            record: None,
            perturb: None,
            classic_hotpath: false,
            global_window: false,
        }
    }
}

/// Atom count of a cell at a given step (deterministic density model; atom
/// motion is the blob drifting through the periodic domain).
fn atoms_at(cfg_atoms: usize, peak: f64, drift: f64, dim: usize, c: [i32; 3], step: u64) -> u32 {
    let pos = [
        (c[0] as f64 + 0.5) / dim as f64,
        (c[1] as f64 + 0.5) / dim as f64,
        (c[2] as f64 + 0.5) / dim as f64,
    ];
    let t = step as f64 * drift;
    let center = [(0.3 + t).fract(), 0.4, 0.5];
    let floor = 1.0;
    let d = gaussian_density(pos, center, 0.18, floor, peak - 1.0);
    (cfg_atoms as f64 * d / 1.6).round().max(1.0) as u32
}

// ---------------------------------------------------------------------------

#[derive(Default)]
struct Cell {
    c: [i32; 3],
    dim: u64,
    atoms: u32,
    cfg_atoms: u64,
    density_peak: f64,
    drift: f64,
    step: u64,
    forces_seen: u8,
    early_forces: u8,
    data: SyntheticBlob,
    lb_every: u64,
    cells: ArrayProxy<Cell>,
    computes: ArrayProxy<Compute>,
    driver: ArrayProxy<Driver>,
    waiting_resume: bool,
    /// Restored from a checkpoint taken mid-step: adopt the driver's step
    /// from the next `Step` broadcast and drop transient protocol state.
    rolled_back: bool,
}

impl Pup for Cell {
    fn pup(&mut self, p: &mut Puper) {
        charm_pup::pup_all!(
            p;
            self.c, self.dim, self.atoms, self.cfg_atoms, self.density_peak,
            self.drift, self.step, self.forces_seen, self.early_forces,
            self.data, self.lb_every, self.cells, self.computes, self.driver,
            self.waiting_resume, self.rolled_back
        );
    }
}

/// Canonical compute index for the (a, b) cell pair.
fn compute_ix(a: [i32; 3], b: [i32; 3]) -> Ix {
    if a <= b {
        Ix::i6(a, b)
    } else {
        Ix::i6(b, a)
    }
}

fn wrap(v: i32, dim: i32) -> i32 {
    v.rem_euclid(dim)
}

impl Cell {
    /// Distinct neighbor cells (wraparound may alias on tiny grids).
    fn neighbors(&self) -> Vec<[i32; 3]> {
        let d = self.dim as i32;
        let mut out = Vec::with_capacity(27);
        for dx in -1..=1 {
            for dy in -1..=1 {
                for dz in -1..=1 {
                    out.push([
                        wrap(self.c[0] + dx, d),
                        wrap(self.c[1] + dy, d),
                        wrap(self.c[2] + dz, d),
                    ]);
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    fn start_step(&mut self, ctx: &mut Ctx<'_>) {
        // Atoms "move": the density blob drifts; refresh our population.
        self.atoms = atoms_at(
            self.cfg_atoms as usize,
            self.density_peak,
            self.drift,
            self.dim as usize,
            self.c,
            self.step,
        );
        self.data.set_len(self.atoms as u64 * BYTES_PER_ATOM);
        for nb in self.neighbors() {
            ctx.send(
                self.computes,
                compute_ix(self.c, nb),
                ComputeMsg::Coords {
                    step: self.step,
                    atoms: self.atoms,
                    wire: SyntheticBlob::new(self.atoms as u64 * WIRE_BYTES_PER_ATOM),
                },
            );
        }
    }

    fn expected_forces(&self) -> u8 {
        self.neighbors().len() as u8
    }

    fn finish_step(&mut self, ctx: &mut Ctx<'_>) {
        ctx.work(self.atoms as f64 * FLOPS_INTEGRATE);
        let lb_step = self.lb_every > 0 && (self.step + 1).is_multiple_of(self.lb_every);
        self.step += 1;
        if lb_step {
            self.waiting_resume = true;
            ctx.at_sync();
        } else {
            self.contribute_done(ctx);
        }
    }

    fn contribute_done(&mut self, ctx: &mut Ctx<'_>) {
        ctx.contribute(
            self.cells,
            self.step as u32,
            RedValue::I64(self.atoms as i64),
            RedOp::Sum,
            Callback::ToChare {
                array: self.driver.id(),
                ix: Ix::i1(0),
            },
        );
    }

    fn maybe_finish(&mut self, ctx: &mut Ctx<'_>) {
        if self.forces_seen >= self.expected_forces() {
            self.forces_seen = 0;
            self.finish_step(ctx);
        }
    }
}

enum CellMsg {
    Step(u64),
    Forces { step: u64 },
}

impl Pup for CellMsg {
    fn pup(&mut self, p: &mut Puper) {
        let mut t: u8 = match self {
            CellMsg::Step(_) => 0,
            CellMsg::Forces { .. } => 1,
        };
        p.p(&mut t);
        let mut v = match self {
            CellMsg::Step(s) | CellMsg::Forces { step: s } => *s,
        };
        p.p(&mut v);
        if p.is_unpacking() {
            *self = match t {
                0 => CellMsg::Step(v),
                _ => CellMsg::Forces { step: v },
            };
        }
    }
}

impl Default for CellMsg {
    fn default() -> Self {
        CellMsg::Step(0)
    }
}

impl Clone for CellMsg {
    fn clone(&self) -> Self {
        match self {
            CellMsg::Step(s) => CellMsg::Step(*s),
            CellMsg::Forces { step } => CellMsg::Forces { step: *step },
        }
    }
}

impl Chare for Cell {
    type Msg = CellMsg;

    fn on_message(&mut self, msg: CellMsg, ctx: &mut Ctx<'_>) {
        match msg {
            CellMsg::Step(s) => {
                if self.rolled_back {
                    // A checkpoint can land mid-step, capturing cells at
                    // mixed phases; after a rollback the whole exchange
                    // re-runs from the driver's step.
                    self.rolled_back = false;
                    self.step = s;
                    self.forces_seen = 0;
                    self.early_forces = 0;
                    self.waiting_resume = false;
                }
                debug_assert_eq!(s, self.step);
                self.forces_seen += std::mem::take(&mut self.early_forces);
                self.start_step(ctx);
                self.maybe_finish(ctx);
            }
            CellMsg::Forces { step } => {
                if self.rolled_back {
                    // No compute can produce forces before our own re-sent
                    // coords, so anything arriving here is stale.
                    return;
                }
                if step == self.step {
                    self.forces_seen += 1;
                    self.maybe_finish(ctx);
                } else {
                    debug_assert_eq!(step, self.step + 1);
                    self.early_forces += 1;
                }
            }
        }
    }

    fn on_event(&mut self, ev: SysEvent, ctx: &mut Ctx<'_>) {
        match ev {
            SysEvent::ResumeFromSync if self.waiting_resume => {
                self.waiting_resume = false;
                self.contribute_done(ctx);
            }
            SysEvent::Restarted { .. } => self.rolled_back = true,
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------------

#[derive(Default)]
struct Compute {
    a: [i32; 3],
    b: [i32; 3],
    inputs_seen: u8,
    early_inputs: u8,
    atoms: [u32; 2],
    step: u64,
    lb_every: u64,
    cells: ArrayProxy<Cell>,
    waiting_resume: bool,
    /// See [`Cell::rolled_back`]: adopt the step of the first coords that
    /// arrive after a rollback.
    rolled_back: bool,
}

impl Pup for Compute {
    fn pup(&mut self, p: &mut Puper) {
        charm_pup::pup_all!(
            p;
            self.a, self.b, self.inputs_seen, self.early_inputs, self.atoms,
            self.step, self.lb_every, self.cells, self.waiting_resume,
            self.rolled_back
        );
    }
}

enum ComputeMsg {
    Coords {
        step: u64,
        atoms: u32,
        wire: SyntheticBlob,
    },
}

impl Pup for ComputeMsg {
    fn pup(&mut self, p: &mut Puper) {
        let ComputeMsg::Coords { step, atoms, wire } = self;
        p.p(step);
        p.p(atoms);
        p.p(wire);
    }
}

impl Default for ComputeMsg {
    fn default() -> Self {
        ComputeMsg::Coords {
            step: 0,
            atoms: 0,
            wire: SyntheticBlob::default(),
        }
    }
}

impl Compute {
    fn is_self_pair(&self) -> bool {
        self.a == self.b
    }

    fn expected_inputs(&self) -> u8 {
        if self.is_self_pair() {
            1
        } else {
            2
        }
    }
}

impl Chare for Compute {
    type Msg = ComputeMsg;

    fn on_message(&mut self, msg: ComputeMsg, ctx: &mut Ctx<'_>) {
        let ComputeMsg::Coords { step, atoms, .. } = msg;
        if self.rolled_back {
            // After a rollback every cell re-runs the driver's step; the
            // first re-sent coords tell us which step that is.
            self.rolled_back = false;
            self.step = step;
            self.inputs_seen = 0;
            self.early_inputs = 0;
            self.waiting_resume = false;
        }
        if step != self.step {
            debug_assert_eq!(step, self.step + 1, "coords from the far future");
            self.early_inputs += 1;
            self.atoms[1] = atoms;
            return;
        }
        self.atoms[self.inputs_seen.min(1) as usize] = atoms;
        self.inputs_seen += 1;
        if self.inputs_seen < self.expected_inputs() {
            return;
        }
        // Force kernel: n1·n2 pair interactions (half for the self pair).
        let (n1, n2) = (self.atoms[0] as f64, self.atoms[1].max(self.atoms[0]) as f64);
        let pairs = if self.is_self_pair() {
            n1 * (n1 - 1.0) / 2.0
        } else {
            n1 * n2
        };
        ctx.work(pairs * FLOPS_PER_PAIR);
        // Return forces to both cells.
        ctx.send(self.cells, Ix::I3(self.a), CellMsg::Forces { step: self.step });
        if !self.is_self_pair() {
            ctx.send(self.cells, Ix::I3(self.b), CellMsg::Forces { step: self.step });
        }
        self.inputs_seen = std::mem::take(&mut self.early_inputs);
        let lb_step = self.lb_every > 0 && (self.step + 1).is_multiple_of(self.lb_every);
        self.step += 1;
        if lb_step {
            self.waiting_resume = true;
            ctx.at_sync();
        }
    }

    fn on_event(&mut self, ev: SysEvent, _ctx: &mut Ctx<'_>) {
        match ev {
            SysEvent::ResumeFromSync => self.waiting_resume = false,
            SysEvent::Restarted { .. } => self.rolled_back = true,
            _ => {}
        }
    }

    fn load_hint(&self) -> f64 {
        (self.atoms[0] as f64 * self.atoms[1] as f64).max(1.0)
    }
}

// ---------------------------------------------------------------------------

#[derive(Default)]
struct Driver {
    step: u64,
    steps: u64,
    ckpt_at: i64,
    cells: ArrayProxy<Cell>,
}

impl Pup for Driver {
    fn pup(&mut self, p: &mut Puper) {
        charm_pup::pup_all!(p; self.step, self.steps, self.ckpt_at, self.cells);
    }
}

impl Chare for Driver {
    type Msg = u8;

    fn on_message(&mut self, _m: u8, ctx: &mut Ctx<'_>) {
        ctx.broadcast(self.cells, CellMsg::Step(0));
    }

    fn on_event(&mut self, ev: SysEvent, ctx: &mut Ctx<'_>) {
        match ev {
            SysEvent::Reduction { tag, value } => {
                debug_assert_eq!(tag as u64, self.step + 1);
                self.step += 1;
                ctx.log_metric("leanmd_step", ctx.now().as_secs_f64());
                ctx.log_metric("leanmd_atoms", value.as_i64() as f64);
                if self.ckpt_at >= 0 && self.step as i64 == self.ckpt_at {
                    ctx.start_mem_checkpoint(ctx.cb_self());
                } else if self.step < self.steps {
                    ctx.broadcast(self.cells, CellMsg::Step(self.step));
                } else {
                    ctx.exit();
                }
            }
            SysEvent::CheckpointDone => {
                if self.step < self.steps {
                    ctx.broadcast(self.cells, CellMsg::Step(self.step));
                } else {
                    ctx.exit();
                }
            }
            SysEvent::Restarted { .. } => {
                // Chare state (including our step counter) was rolled back
                // to the checkpoint; re-drive from there.
                ctx.broadcast(self.cells, CellMsg::Step(self.step));
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------------

/// Run LeanMD; returns per-step times (metric `leanmd_step`).
pub fn run(config: LeanMdConfig) -> AppRun {
    let (run, _rt) = run_with_runtime(config);
    run
}

/// Run LeanMD and also hand back the runtime for metric inspection
/// (checkpoint/restart figures read `ckpt_time_s` / `restart_time_s`).
pub fn run_with_runtime(mut config: LeanMdConfig) -> (AppRun, Runtime) {
    let mut b = Runtime::builder(std::mem::replace(
        &mut config.machine,
        MachineConfig::homogeneous(1),
    ))
    .seed(config.seed)
    .threads(config.threads)
    .classic_hotpath(config.classic_hotpath)
    .global_window(config.global_window)
    .lb_trigger(LbTrigger::AtSync);
    if let Some(interval) = config.auto_ckpt {
        b = b.auto_checkpoint(interval);
    }
    if let Some(tc) = config.trace.take() {
        b = b.tracing(tc);
    }
    if let Some(rc) = config.record.take() {
        b = b.record(rc);
    }
    if let Some(pc) = config.perturb.take() {
        b = b.perturb(pc);
    }
    if let Some(ec) = config.elastic.take() {
        b = b.elastic(ec);
    }
    let has_strategy = config.strategy.is_some();
    if let Some(s) = config.strategy.take() {
        b = b.strategy(s);
    }
    let mut rt = b.build();
    for s in config.trace_sinks.drain(..) {
        rt.add_trace_sink(s);
    }

    let cells: ArrayProxy<Cell> = rt.create_array("leanmd_cells");
    let computes: ArrayProxy<Compute> = rt.create_array("leanmd_computes");
    let driver: ArrayProxy<Driver> = rt.create_array("leanmd_driver");
    // Arrays are migratable whenever any balancer may run — AtSync rounds
    // (lb_every) or RTS-triggered rounds (reconfigure / thermal / cloud).
    let migratable = config.lb_every > 0 || has_strategy;
    rt.set_at_sync(cells, migratable);
    rt.set_at_sync(computes, migratable);

    let dim = config.cells_per_dim;
    let pes = rt.num_pes();
    // Block placement of cells; computes land on the home of their first
    // cell (a sensible static map the balancer can then improve).
    let cell_pe = |c: [i32; 3]| -> usize {
        let linear = (c[0] as usize * dim + c[1] as usize) * dim + c[2] as usize;
        linear * pes / (dim * dim * dim)
    };

    for x in 0..dim as i32 {
        for y in 0..dim as i32 {
            for z in 0..dim as i32 {
                let c = [x, y, z];
                let atoms = atoms_at(
                    config.atoms_per_cell,
                    config.density_peak,
                    config.drift_per_step,
                    dim,
                    c,
                    0,
                );
                rt.insert(
                    cells,
                    Ix::I3(c),
                    Cell {
                        c,
                        dim: dim as u64,
                        atoms,
                        cfg_atoms: config.atoms_per_cell as u64,
                        density_peak: config.density_peak,
                        drift: config.drift_per_step,
                        data: SyntheticBlob::new(atoms as u64 * BYTES_PER_ATOM),
                        lb_every: config.lb_every,
                        cells,
                        computes,
                        driver,
                        ..Cell::default()
                    },
                    Some(cell_pe(c)),
                );
            }
        }
    }
    // Create each canonical compute exactly once.
    for x in 0..dim as i32 {
        for y in 0..dim as i32 {
            for z in 0..dim as i32 {
                let a = [x, y, z];
                let d = dim as i32;
                for dx in -1..=1 {
                    for dy in -1..=1 {
                        for dz in -1..=1 {
                            let b = [wrap(x + dx, d), wrap(y + dy, d), wrap(z + dz, d)];
                            if a > b {
                                continue; // canonical owner is the smaller
                            }
                            let ix = compute_ix(a, b);
                            if rt.element_pe(computes.id(), &ix).is_some() {
                                continue; // wraparound alias already created
                            }
                            rt.insert(
                                computes,
                                ix,
                                Compute {
                                    a,
                                    b,
                                    lb_every: config.lb_every,
                                    cells,
                                    ..Compute::default()
                                },
                                Some(cell_pe(a)),
                            );
                        }
                    }
                }
            }
        }
    }

    rt.insert(
        driver,
        Ix::i1(0),
        Driver {
            steps: config.steps,
            ckpt_at: config.ckpt_at.map(|s| s as i64).unwrap_or(-1),
            cells,
            ..Driver::default()
        },
        Some(0),
    );

    if let Some((t, pe)) = config.fail_at {
        rt.schedule_failure(t, pe);
    }
    for (t, pe) in &config.failures {
        rt.schedule_failure(*t, *pe);
    }
    for (t, pe, warning) in &config.preemptions {
        rt.schedule_preemption(*t, *pe, *warning);
    }
    for (t, to) in &config.reconfigure {
        rt.schedule_reconfigure(*t, *to);
    }

    rt.send(driver, Ix::i1(0), 0u8);
    let summary = rt.run();
    let run = crate::collect_app_run(&rt, &summary, "leanmd_step");
    (run, rt)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completes_and_conserves_density_model() {
        let (run, rt) = run_with_runtime(LeanMdConfig {
            steps: 6,
            ..LeanMdConfig::default()
        });
        assert_eq!(run.step_times.len(), 6);
        // Atom totals are deterministic per step (no drift → constant).
        let atoms: Vec<f64> = rt.metric("leanmd_atoms").iter().map(|&(_, v)| v).collect();
        assert!(atoms.windows(2).all(|w| w[0] == w[1]), "{atoms:?}");
    }

    #[test]
    fn lb_improves_skewed_runs() {
        let mk = |lb: bool| LeanMdConfig {
            machine: MachineConfig::homogeneous(8),
            cells_per_dim: 6,
            atoms_per_cell: 40,
            density_peak: 8.0,
            steps: 12,
            lb_every: if lb { 3 } else { 0 },
            strategy: lb.then(|| Box::new(charm_lb::GreedyLb) as Box<dyn Strategy>),
            ..LeanMdConfig::default()
        };
        let nolb = run(mk(false));
        let lb = run(mk(true));
        assert!(lb.lb_rounds >= 1);
        let tail = |r: &AppRun| {
            let d = r.step_durations();
            d[d.len() - 4..].iter().sum::<f64>() / 4.0
        };
        assert!(
            tail(&lb) < tail(&nolb) * 0.8,
            "LB={:.5}s NoLB={:.5}s",
            tail(&lb),
            tail(&nolb)
        );
    }

    #[test]
    fn checkpoint_and_failure_recovery() {
        // First, find out when the checkpoint lands so the injected
        // failure falls strictly after it.
        let (_probe, probe_rt) = run_with_runtime(LeanMdConfig {
            steps: 8,
            ckpt_at: Some(2),
            ..LeanMdConfig::default()
        });
        let ckpt_t = probe_rt.metric("ckpt_time_s")[0].0;
        let end_t = probe_rt.metric("leanmd_step").last().unwrap().0;
        let fail_t = SimTime::from_secs_f64((ckpt_t + end_t) / 2.0);
        let (run, rt) = run_with_runtime(LeanMdConfig {
            steps: 8,
            ckpt_at: Some(2),
            fail_at: Some((fail_t, 5)),
            ..LeanMdConfig::default()
        });
        assert_eq!(rt.metric("ckpt_time_s").len(), 1);
        assert_eq!(rt.metric("restart_time_s").len(), 1);
        assert!(run.step_times.len() >= 8, "steps re-run after rollback");
        assert!(
            *run.step_times.last().unwrap() > 0.0,
            "run completed"
        );
    }

    #[test]
    fn auto_checkpoint_survives_repeated_failures() {
        // Probe to learn the run length, then enable periodic checkpoints
        // and pepper the run with two (non-buddy) node failures.
        let (_probe, probe_rt) = run_with_runtime(LeanMdConfig {
            steps: 8,
            ..LeanMdConfig::default()
        });
        let end_t = probe_rt.metric("leanmd_step").last().unwrap().0;
        let (run, rt) = run_with_runtime(LeanMdConfig {
            steps: 8,
            auto_ckpt: Some(SimTime::from_secs_f64(end_t / 6.0)),
            failures: vec![
                (SimTime::from_secs_f64(end_t * 0.45), 2),
                (SimTime::from_secs_f64(end_t * 0.75), 3),
            ],
            ..LeanMdConfig::default()
        });
        assert!(rt.unrecoverable().is_none(), "{:?}", rt.unrecoverable());
        assert!(rt.metric("ckpt_committed").len() >= 2, "periodic checkpoints ran");
        assert!(rt.metric("restart_time_s").len() >= 2, "both failures recovered");
        assert!(run.step_times.len() >= 8, "steps re-run after rollbacks");
    }

    #[test]
    fn shrink_then_expand_completes() {
        let (run, rt) = run_with_runtime(LeanMdConfig {
            machine: MachineConfig::homogeneous(16),
            steps: 16,
            strategy: Some(Box::new(charm_lb::GreedyLb)),
            reconfigure: vec![
                (SimTime::from_millis(20), 8),
                (SimTime::from_millis(60), 16),
            ],
            ..LeanMdConfig::default()
        });
        assert_eq!(rt.metric("reconfigure").len(), 2);
        assert_eq!(run.step_times.len(), 16);
        assert_eq!(rt.num_pes(), 16);
    }

    #[test]
    fn heterogeneous_cloud_lb_recovers_performance() {
        // Fig. 17: slow nodes hurt; heterogeneity-aware LB recovers.
        let mk = |slow: bool, lb: bool| {
            let mut machine = MachineConfig::homogeneous(8);
            if slow {
                machine.speed = machine.speed.clone().slow_block(0, 2, 0.5);
            }
            run(LeanMdConfig {
                machine,
                cells_per_dim: 6,
                steps: 10,
                lb_every: if lb { 2 } else { 0 },
                strategy: lb.then(|| Box::new(charm_lb::GreedyLb) as Box<dyn Strategy>),
                ..LeanMdConfig::default()
            })
        };
        let homo = mk(false, false);
        let hetero_nolb = mk(true, false);
        let hetero_lb = mk(true, true);
        let tail = |r: &AppRun| {
            let d = r.step_durations();
            d[d.len() - 3..].iter().sum::<f64>() / 3.0
        };
        assert!(tail(&hetero_nolb) > tail(&homo) * 1.3, "slow node must hurt");
        assert!(
            tail(&hetero_lb) < tail(&hetero_nolb) * 0.85,
            "speed-aware LB must recover: lb={:.5}s nolb={:.5}s homo={:.5}s",
            tail(&hetero_lb),
            tail(&hetero_nolb),
            tail(&homo)
        );
    }

    #[test]
    fn deterministic() {
        let a = run(LeanMdConfig::default());
        let b = run(LeanMdConfig::default());
        assert_eq!(a.step_times, b.step_times);
    }
}
