//! PDES — parallel discrete event simulation with the YAWNS conservative
//! protocol, benchmarked with PHOLD (§IV-E, Fig. 15).
//!
//! Logical processes (LPs) execute events in nondecreasing *model-time*
//! order. YAWNS alternates two phases:
//!
//! 1. **Window calculation** — a Min-reduction over every LP's earliest
//!    pending event establishes `W = min + lookahead`; any event an
//!    in-window execution creates lands at `ts + lookahead + δ ≥ W`, so
//!    everything below `W` is safe.
//! 2. **Execution** — each LP executes its events below `W`; each event
//!    schedules one successor on a uniformly random LP (PHOLD).
//!
//! Window advancement also requires that no event messages are in flight;
//! like the real protocol, the coordinator compares global sent/received
//! counters and re-polls until they match.
//!
//! The mini-app leans on exactly the features §IV-E lists: many more LPs
//! than PEs (idle LPs cost nothing — the scheduler just runs another LP),
//! fully asynchronous event delivery, and optional TRAM aggregation for the
//! fine-grained event messages (Fig. 15b's crossover).

use charm_core::{
    ArrayProxy, Callback, Chare, Ctx, Ix, MachineConfig, RedOp, RedValue, Runtime, SysEvent,
};
use charm_pup::{Pup, Puper};
use charm_tram::{Tram, TramBuf, TramConfig};
use rand::Rng;
use std::collections::BinaryHeap;

/// PHOLD/YAWNS configuration.
pub struct PdesConfig {
    /// Machine to run on.
    pub machine: MachineConfig,
    /// Logical processes per PE (Fig. 15a sweeps 64/128/256).
    pub lps_per_pe: usize,
    /// Initial events per LP (Fig. 15b sweeps 64/1024 at 256 LPs/PE).
    pub initial_events_per_lp: usize,
    /// YAWNS windows to execute.
    pub windows: u64,
    /// Protocol lookahead in model-time units.
    pub lookahead: u64,
    /// Mean extra delay of a rescheduled event (model time).
    pub mean_delay: u64,
    /// Flops charged per executed event.
    pub flops_per_event: f64,
    /// Use TRAM for event delivery?
    pub tram: Option<TramConfig>,
    /// Seed.
    pub seed: u64,
    /// Record a replay log (None = off; see `charm_core::replay`).
    pub record: Option<charm_core::ReplayConfig>,
    /// Schedule perturbation for race hunting (None = off).
    pub perturb: Option<charm_core::PerturbConfig>,
    /// Projections-lite tracing (None = off; see `charm_core::trace`).
    pub trace: Option<charm_core::TraceConfig>,
    /// Simulator worker threads (1 = sequential engine).
    pub threads: usize,
    /// Run on the classic (pre-overhaul) engine hot path: binary-heap
    /// event queue, no arena recycling. A/B regression knob.
    pub classic_hotpath: bool,
    /// Force the sharded engine's global-window lockstep fallback instead
    /// of the adaptive per-shard-pair lookahead. A/B regression knob.
    pub global_window: bool,
}

impl Default for PdesConfig {
    fn default() -> Self {
        PdesConfig {
            machine: MachineConfig::homogeneous(16),
            lps_per_pe: 64,
            initial_events_per_lp: 32,
            windows: 24,
            lookahead: 100,
            mean_delay: 150,
            flops_per_event: 500.0,
            tram: None,
            seed: 42,
            record: None,
            perturb: None,
            trace: None,
            threads: 1,
            classic_hotpath: false,
            global_window: false,
        }
    }
}

/// Result of a PHOLD run.
#[derive(Debug)]
pub struct PdesRun {
    /// Total events executed.
    pub events_executed: u64,
    /// Virtual wall time of the run, seconds.
    pub time_s: f64,
    /// Events per second of virtual wall time — the Fig. 15 y-axis.
    pub event_rate: f64,
    /// Windows completed.
    pub windows: u64,
    /// sent≠recv re-polls (in-flight stragglers caught by the protocol).
    pub repolls: u64,
}

enum LpMsg {
    /// An event scheduled for this LP at model time `ts`.
    Event { ts: u64 },
    /// Execute everything below `w_end`; window sequence number `k`.
    Execute { k: u32, w_end: u64 },
    /// Contribute counters for window-calculation round `k`.
    Poll { k: u32 },
}

impl Pup for LpMsg {
    fn pup(&mut self, p: &mut Puper) {
        let mut t: u8 = match self {
            LpMsg::Event { .. } => 0,
            LpMsg::Execute { .. } => 1,
            LpMsg::Poll { .. } => 2,
        };
        p.p(&mut t);
        if p.is_unpacking() {
            *self = match t {
                0 => LpMsg::Event { ts: 0 },
                1 => LpMsg::Execute { k: 0, w_end: 0 },
                2 => LpMsg::Poll { k: 0 },
                x => panic!("bad LpMsg {x}"),
            };
        }
        match self {
            LpMsg::Event { ts } => p.p(ts),
            LpMsg::Execute { k, w_end } => {
                p.p(k);
                p.p(w_end);
            }
            LpMsg::Poll { k } => p.p(k),
        }
    }
}

impl Default for LpMsg {
    fn default() -> Self {
        LpMsg::Event { ts: 0 }
    }
}

impl Clone for LpMsg {
    fn clone(&self) -> Self {
        match self {
            LpMsg::Event { ts } => LpMsg::Event { ts: *ts },
            LpMsg::Execute { k, w_end } => LpMsg::Execute {
                k: *k,
                w_end: *w_end,
            },
            LpMsg::Poll { k } => LpMsg::Poll { k: *k },
        }
    }
}

#[derive(Default)]
struct Lp {
    /// Pending events (min-heap over model time).
    pending: Vec<u64>,
    heap_dirty: bool,
    num_lps: u64,
    lps_per_pe: u64,
    lookahead: u64,
    mean_delay: u64,
    flops_per_event: f64,
    sent: i64,
    received: i64,
    executed: u64,
    driver: ArrayProxy<Driver>,
    lps: ArrayProxy<Lp>,
    tram: Option<Tram<Lp>>,
    tbuf: TramBuf<Lp>,
}

impl Pup for Lp {
    fn pup(&mut self, p: &mut Puper) {
        charm_pup::pup_all!(
            p;
            self.pending, self.heap_dirty, self.num_lps, self.lps_per_pe,
            self.lookahead, self.mean_delay, self.flops_per_event,
            self.sent, self.received, self.executed, self.driver, self.lps,
            self.tram, self.tbuf
        );
    }
}

impl Lp {
    fn min_pending(&self) -> u64 {
        self.pending.iter().copied().min().unwrap_or(u64::MAX)
    }

    fn contribute_counters(&mut self, k: u32, ctx: &mut Ctx<'_>) {
        let cb = Callback::ToChare {
            array: self.driver.id(),
            ix: Ix::i1(0),
        };
        ctx.contribute(
            self.lps,
            k * 2,
            RedValue::VecI64(vec![self.executed as i64, self.sent, self.received]),
            RedOp::Sum,
            cb,
        );
        let min = self.min_pending();
        let encoded = if min == u64::MAX {
            i64::MAX
        } else {
            min as i64
        };
        ctx.contribute(self.lps, k * 2 + 1, RedValue::I64(encoded), RedOp::Min, cb);
    }

    fn execute_window(&mut self, w_end: u64, ctx: &mut Ctx<'_>) {
        // Execute all pending events strictly below the window edge.
        let mut heap: BinaryHeap<std::cmp::Reverse<u64>> =
            self.pending.drain(..).map(std::cmp::Reverse).collect();
        while let Some(&std::cmp::Reverse(ts)) = heap.peek() {
            if ts >= w_end {
                break;
            }
            heap.pop();
            self.executed += 1;
            ctx.work(self.flops_per_event);
            // PHOLD: reschedule on a uniformly random LP with a random
            // delay past the lookahead.
            let delay = self.lookahead + 1 + ctx.rng().gen_range(0..self.mean_delay.max(1) * 2);
            let new_ts = ts + delay;
            let dst = ctx.rng().gen_range(0..self.num_lps);
            self.sent += 1;
            if dst == lp_of(ctx.my_index()) {
                // Self-event: no message needed.
                self.received += 1;
                heap.push(std::cmp::Reverse(new_ts));
                continue;
            }
            let dst_pe = (dst / self.lps_per_pe) as usize;
            match self.tram {
                Some(t) => t.send_via(
                    ctx,
                    &mut self.tbuf,
                    dst_pe,
                    Ix::i1(dst as i64),
                    LpMsg::Event { ts: new_ts },
                ),
                None => ctx.send(self.lps, Ix::i1(dst as i64), LpMsg::Event { ts: new_ts }),
            }
        }
        self.pending = heap.into_iter().map(|r| r.0).collect();
        if let Some(t) = self.tram {
            t.flush_via(ctx, &mut self.tbuf);
        }
    }
}

fn lp_of(ix: Ix) -> u64 {
    match ix {
        Ix::I1(i) => i as u64,
        other => panic!("LP index {other}"),
    }
}

impl Chare for Lp {
    type Msg = LpMsg;

    fn on_message(&mut self, msg: LpMsg, ctx: &mut Ctx<'_>) {
        match msg {
            LpMsg::Event { ts } => {
                self.received += 1;
                self.pending.push(ts);
            }
            LpMsg::Execute { k, w_end } => {
                self.execute_window(w_end, ctx);
                self.contribute_counters(k, ctx);
            }
            LpMsg::Poll { k } => {
                self.contribute_counters(k, ctx);
            }
        }
    }

    fn on_event(&mut self, _ev: SysEvent, _ctx: &mut Ctx<'_>) {}
}

#[derive(Default)]
struct Driver {
    round: u32,
    windows_done: u64,
    windows_target: u64,
    lookahead: u64,
    repolls: u64,
    counters: Option<(i64, i64, i64)>,
    min_ts: Option<i64>,
    lps: ArrayProxy<Lp>,
}

impl Pup for Driver {
    fn pup(&mut self, p: &mut Puper) {
        charm_pup::pup_all!(
            p;
            self.round, self.windows_done, self.windows_target,
            self.lookahead, self.repolls, self.counters, self.min_ts, self.lps
        );
    }
}

impl Driver {
    fn maybe_advance(&mut self, ctx: &mut Ctx<'_>) {
        let (Some((executed, sent, recv)), Some(min_ts)) = (self.counters, self.min_ts) else {
            return;
        };
        self.counters = None;
        self.min_ts = None;
        if sent != recv {
            // Events still in flight (possibly parked in TRAM buffers):
            // poll again. Virtual time passes between polls, so the
            // stragglers drain.
            self.repolls += 1;
            self.round += 1;
            ctx.broadcast(self.lps, LpMsg::Poll { k: self.round });
            return;
        }
        ctx.log_metric("pdes_events", executed as f64);
        if self.windows_done >= self.windows_target || min_ts == i64::MAX {
            ctx.log_metric("pdes_windows", self.windows_done as f64);
            ctx.log_metric("pdes_repolls", self.repolls as f64);
            ctx.exit();
            return;
        }
        self.windows_done += 1;
        let w_end = min_ts as u64 + self.lookahead;
        self.round += 1;
        ctx.broadcast(
            self.lps,
            LpMsg::Execute {
                k: self.round,
                w_end,
            },
        );
    }
}

impl Chare for Driver {
    type Msg = u8;

    fn on_message(&mut self, _m: u8, ctx: &mut Ctx<'_>) {
        self.round = 1;
        ctx.broadcast(self.lps, LpMsg::Poll { k: 1 });
    }

    fn on_event(&mut self, ev: SysEvent, ctx: &mut Ctx<'_>) {
        if let SysEvent::Reduction { tag, value } = ev {
            if tag == self.round * 2 {
                let v = value.as_vec_i64();
                self.counters = Some((v[0], v[1], v[2]));
            } else if tag == self.round * 2 + 1 {
                self.min_ts = Some(value.as_i64());
            } else {
                panic!("stale reduction tag {tag} in round {}", self.round);
            }
            self.maybe_advance(ctx);
        }
    }
}

/// Run PHOLD under YAWNS; returns throughput numbers.
pub fn run(config: PdesConfig) -> PdesRun {
    let (run, _rt) = run_with_runtime(config);
    run
}

/// Run PHOLD and also hand back the runtime (replay-log and metric
/// inspection).
pub fn run_with_runtime(mut config: PdesConfig) -> (PdesRun, Runtime) {
    let num_pes = config.machine.num_pes;
    let num_lps = num_pes * config.lps_per_pe;
    let mut b = Runtime::builder(std::mem::replace(
        &mut config.machine,
        MachineConfig::homogeneous(1),
    ))
    .seed(config.seed)
    .threads(config.threads)
    .classic_hotpath(config.classic_hotpath)
    .global_window(config.global_window);
    if let Some(rc) = config.record.take() {
        b = b.record(rc);
    }
    if let Some(pc) = config.perturb.take() {
        b = b.perturb(pc);
    }
    if let Some(tc) = config.trace.take() {
        b = b.tracing(tc);
    }
    let mut rt = b.build();
    let lps: ArrayProxy<Lp> = rt.create_array("pdes_lps");
    let driver: ArrayProxy<Driver> = rt.create_array("pdes_driver");
    let tram = config
        .tram
        .map(|cfg| Tram::attach(&mut rt, "pdes_tram", lps, cfg));

    // Initial event population: deterministic pseudo-random timestamps.
    let mut seedgen = config.seed;
    let mut next = move || {
        seedgen = seedgen
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        seedgen >> 33
    };
    for lp in 0..num_lps {
        let pe = lp / config.lps_per_pe;
        let pending: Vec<u64> = (0..config.initial_events_per_lp)
            .map(|_| next() % (config.mean_delay * 4))
            .collect();
        rt.insert(
            lps,
            Ix::i1(lp as i64),
            Lp {
                pending,
                num_lps: num_lps as u64,
                lps_per_pe: config.lps_per_pe as u64,
                lookahead: config.lookahead,
                mean_delay: config.mean_delay,
                flops_per_event: config.flops_per_event,
                driver,
                lps,
                tram,
                tbuf: TramBuf::with_threshold(64),
                ..Lp::default()
            },
            Some(pe),
        );
    }
    rt.insert(
        driver,
        Ix::i1(0),
        Driver {
            windows_target: config.windows,
            lookahead: config.lookahead,
            lps,
            ..Driver::default()
        },
        Some(0),
    );
    rt.send(driver, Ix::i1(0), 0u8);
    let summary = rt.run();

    let executed = rt
        .metric("pdes_events")
        .last()
        .map(|&(_, v)| v as u64)
        .unwrap_or(0);
    let windows = rt
        .metric("pdes_windows")
        .last()
        .map(|&(_, v)| v as u64)
        .unwrap_or(0);
    let repolls = rt
        .metric("pdes_repolls")
        .last()
        .map(|&(_, v)| v as u64)
        .unwrap_or(0);
    let time_s = summary.end_time.as_secs_f64();
    let run = PdesRun {
        events_executed: executed,
        time_s,
        event_rate: executed as f64 / time_s.max(1e-12),
        windows,
        repolls,
    };
    (run, rt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use charm_core::SimTime;

    fn small(lps_per_pe: usize, events: usize, tram: bool) -> PdesConfig {
        PdesConfig {
            machine: MachineConfig::homogeneous(8),
            lps_per_pe,
            initial_events_per_lp: events,
            windows: 12,
            tram: tram.then(|| TramConfig {
                ndims: 2,
                flush_threshold: 64,
                flush_interval: Some(SimTime::from_micros(30)),
            }),
            ..PdesConfig::default()
        }
    }

    #[test]
    fn phold_executes_events_across_windows() {
        let r = run(small(16, 16, false));
        assert_eq!(r.windows, 12);
        assert!(r.events_executed > 500, "executed={}", r.events_executed);
        assert!(r.event_rate > 0.0);
    }

    #[test]
    fn more_lps_per_pe_increases_event_rate() {
        // Fig. 15a: over-decomposition keeps PEs busy inside a window.
        let lo = run(small(8, 16, false));
        let hi = run(small(64, 16, false));
        assert!(
            hi.event_rate > lo.event_rate * 1.1,
            "lo={:.0}/s hi={:.0}/s",
            lo.event_rate,
            hi.event_rate
        );
    }

    #[test]
    fn tram_helps_at_high_event_counts() {
        // Fig. 15b: aggregation wins when event volume is high…
        let direct = run(small(32, 96, false));
        let tram = run(small(32, 96, true));
        assert_eq!(direct.events_executed, tram.events_executed);
        assert!(
            tram.event_rate > direct.event_rate,
            "direct={:.0}/s tram={:.0}/s",
            direct.event_rate,
            tram.event_rate
        );
    }

    #[test]
    fn direct_wins_at_low_event_counts() {
        // …and loses at low volume, where buffered items wait on timers.
        let direct = run(small(16, 2, false));
        let tram = run(small(16, 2, true));
        assert!(
            direct.event_rate > tram.event_rate,
            "direct={:.0}/s tram={:.0}/s",
            direct.event_rate,
            tram.event_rate
        );
    }

    #[test]
    fn conservation_of_events() {
        // PHOLD reschedules exactly one event per execution: the pending
        // population is invariant, so executed == windows' worth of flow
        // and nothing is lost (sent == recv at every window boundary —
        // enforced by the protocol; here we check the totals line up).
        let r = run(small(16, 8, false));
        assert_eq!(r.windows, 12);
        // 8 PEs × 16 LPs × 8 events in flight forever; executed is a
        // multiple of nothing in particular but must be positive and the
        // run must have terminated (no event leak → no livelock).
        assert!(r.events_executed > 0);
    }

    #[test]
    fn deterministic() {
        let a = run(small(16, 8, true));
        let b = run(small(16, 8, true));
        assert_eq!(a.events_executed, b.events_executed);
        assert_eq!(a.time_s, b.time_s);
    }
}
