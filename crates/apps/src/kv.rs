//! charm-kv — a sharded KV/DHT service under live user traffic.
//!
//! The repo's other mini-apps are iterative HPC; this one is the ROADMAP's
//! service shape: symmetric migratable shards that *listen and serve*
//! indefinitely while the runtime rebalances, checkpoints, and resizes
//! them underneath the traffic.
//!
//! * **Shards** are chares owning contiguous key ranges
//!   (`shard = key / keys_per_shard`), over-decomposed
//!   (`shards_per_pe` ≫ 1) and placed *blocked* — consecutive shards on the
//!   same PE — so a hot key region concentrates on one or two PEs and only
//!   measurement-based LB can spread it.
//! * **Clients** generate an open-loop request stream: seeded Poisson
//!   arrivals ([`crate::util::PoissonArrivals`]) with Zipf-skewed keys
//!   ([`crate::util::ZipfSampler`]) whose hotspot *drifts*: the hot key
//!   region advances every [`KvConfig::drift_period`], so a balancer that
//!   measured yesterday's load keeps chasing today's.
//! * **SLOs**: every request's end-to-end latency (virtual arrival →
//!   acknowledged) lands in a per-client [`LogHist`]; the run reports
//!   p50/p99/p999, and a per-poll p99 time series records how fast LB and
//!   the elastic controller react to drift.
//! * **Fault tolerance**: PUTs are versioned last-write-wins registers
//!   `(ver, client)` and clients retry un-acked requests, so a buddy
//!   checkpoint rollback mid-traffic loses no *acknowledged* PUT — the
//!   retry either re-applies it or a newer version already superseded it
//!   ([`verify_acked_puts`] checks the invariant).
//! * **TRAM**: small GET/PUT requests can ride the mesh-routed aggregation
//!   layer ([`KvConfig::tram`]).

use crate::util::{PoissonArrivals, SplitMix64, ZipfSampler};
use charm_core::{
    ArrayProxy, Callback, Chare, Ctx, Ix, LbTrigger, LogHist, MachineConfig, RedOp, RedValue,
    Runtime, SimTime, Strategy, SysEvent,
};
use charm_pup::{Pup, Puper};
use charm_tram::{Tram, TramBuf, TramConfig};
use std::collections::BTreeMap;

/// Configuration for a charm-kv service run.
pub struct KvConfig {
    /// The machine to run on.
    pub machine: MachineConfig,
    /// Shards per PE (over-decomposition factor).
    pub shards_per_pe: usize,
    /// Contiguous keys owned by each shard.
    pub keys_per_shard: u64,
    /// Traffic-generating client chares (spread round-robin over PEs).
    pub clients: usize,
    /// Requests each client issues (the run serves until all are acked).
    pub requests_per_client: u64,
    /// Offered load as a fraction of the machine's aggregate service
    /// capacity (sets the Poisson arrival rate).
    pub offered_load: f64,
    /// Zipf exponent of the key popularity distribution.
    pub zipf_s: f64,
    /// Width of the hot key region, in shards. Hot ranks interleave across
    /// the region (one per shard round-robin), so the *region* is hot while
    /// no single shard exceeds one PE's capacity — the imbalance is
    /// fixable by migration, which is the point.
    pub hot_shards: usize,
    /// The hot region's center advances every this much virtual time.
    pub drift_period: SimTime,
    /// ... by this many shards' worth of keys.
    pub drift_step_shards: usize,
    /// Fraction of requests that are PUTs (rest are GETs).
    pub put_fraction: f64,
    /// Service work charged per GET / per PUT (flops).
    pub flops_per_get: f64,
    pub flops_per_put: f64,
    /// Optional LB strategy (with `lb_period`, chases the hotspot).
    pub strategy: Option<Box<dyn Strategy>>,
    /// Period of RTS-triggered LB rounds (None = never balance).
    pub lb_period: Option<SimTime>,
    /// Automatic in-memory buddy checkpoint interval (§III-B).
    pub auto_ckpt: Option<SimTime>,
    /// PE failures to inject, as `(time, pe)` pairs.
    pub failures: Vec<(SimTime, usize)>,
    /// Spot preemptions: (kill time, any PE on the node, warning lead).
    pub preemptions: Vec<(SimTime, usize, SimTime)>,
    /// Closed-loop elastic controller (None = static PE set).
    pub elastic: Option<charm_core::ElasticConfig>,
    /// Route requests through TRAM aggregation (None = direct sends).
    pub tram: Option<TramConfig>,
    /// Resend an un-acked request after this long (purged in-flight
    /// requests after a rollback are re-driven this way).
    pub retry_timeout: SimTime,
    /// Driver poll cadence: completion detection, retry scans, and the
    /// p99-over-time series all run on this clock.
    pub poll_period: SimTime,
    /// Safety valve: abandon the run after this many polls (a stuck run
    /// logs `kv_stuck` instead of spinning forever).
    pub max_polls: u64,
    /// RNG seed.
    pub seed: u64,
    /// Record a replay log (bound it with `ReplayConfig::max_execs` for
    /// long-running service recordings).
    pub record: Option<charm_core::ReplayConfig>,
    /// Schedule perturbation for race hunting (None = off).
    pub perturb: Option<charm_core::PerturbConfig>,
    /// Projections-lite tracing (None = off).
    pub trace: Option<charm_core::TraceConfig>,
    /// Streaming trace sinks (require `trace`).
    pub trace_sinks: Vec<Box<dyn charm_core::TraceSink>>,
    /// Simulator worker threads (1 = sequential engine).
    pub threads: usize,
}

impl KvConfig {
    /// A serving-workload baseline: 8 shards/PE, 2 clients/PE, 10% PUTs,
    /// a hot region two PEs wide drifting every 20 ms.
    pub fn service(machine: MachineConfig, requests_per_client: u64) -> Self {
        let pes = machine.num_pes.max(1);
        let shards_per_pe = 8;
        KvConfig {
            machine,
            shards_per_pe,
            keys_per_shard: 64,
            clients: 2 * pes,
            requests_per_client,
            offered_load: 0.6,
            zipf_s: 1.0,
            hot_shards: 2 * shards_per_pe,
            drift_period: SimTime::from_millis(20),
            drift_step_shards: shards_per_pe + 1,
            put_fraction: 0.1,
            flops_per_get: 2.0e5,
            flops_per_put: 3.0e5,
            strategy: None,
            lb_period: None,
            auto_ckpt: None,
            failures: Vec::new(),
            preemptions: Vec::new(),
            elastic: None,
            tram: None,
            retry_timeout: SimTime::from_millis(60),
            poll_period: SimTime::from_millis(10),
            max_polls: 200_000,
            seed: 42,
            record: None,
            perturb: None,
            trace: None,
            trace_sinks: Vec::new(),
            threads: 1,
        }
    }
}

/// Result of a charm-kv run.
#[derive(Debug, Clone)]
pub struct KvRun {
    /// Offered arrival rate (requests/s of virtual time).
    pub offered_rps: f64,
    /// Requests acknowledged end-to-end.
    pub acked: u64,
    /// PUTs among them.
    pub acked_puts: u64,
    /// Request retransmissions (timeouts and post-rollback re-drives).
    pub retries: u64,
    /// PUT applications the version order rejected (duplicates/supersessions).
    pub stale_puts: u64,
    /// Virtual seconds from start to the last ack.
    pub duration_s: f64,
    /// Acked requests per virtual second.
    pub throughput_rps: f64,
    /// Mean end-to-end latency, seconds.
    pub mean_latency_s: f64,
    /// End-to-end latency SLOs, seconds (client-observed, log-bucket
    /// estimates from the merged [`LogHist`]).
    pub p50_s: f64,
    pub p99_s: f64,
    pub p999_s: f64,
    /// The merged latency histogram itself.
    pub latency: LogHist,
    /// Per-poll cumulative p99 in µs, as `(virtual time s, p99 µs)` — the
    /// LB/elastic reaction curve.
    pub p99_series: Vec<(f64, f64)>,
    /// LB rounds that ran / objects they migrated.
    pub lb_rounds: usize,
    pub migrations: usize,
    /// Elastic reconfigurations and checkpoint rollbacks observed.
    pub reconfigures: usize,
    pub rollbacks: usize,
    /// Mean PE utilization over the run.
    pub avg_utilization: f64,
    /// Entry methods executed / messages delivered.
    pub entries: u64,
    pub messages: u64,
    /// Order-independent digest of the final store contents (all shards).
    pub store_digest: u64,
    /// Digest of every chare's final PUP state (strongest determinism pin).
    pub state_digest: u64,
    /// Set when the run hit an unrecoverable failure.
    pub unrecoverable: Option<String>,
}

// ---------------------------------------------------------------------------
// key geometry
// ---------------------------------------------------------------------------

/// Center key of the hot region at virtual time `t_ns`.
pub fn hot_center(t_ns: u64, period: SimTime, step_keys: u64, keys: u64) -> u64 {
    ((t_ns / period.0.max(1)).wrapping_mul(step_keys)) % keys.max(1)
}

/// Key serving Zipf rank `rank` (1-based) when the hot region starts at
/// `center`: ranks interleave round-robin across the `hot_shards`-wide
/// region, one hot key per shard, then wrap deeper into the region.
pub fn zipf_key(rank: u64, center: u64, keys: u64, hot_shards: u64, keys_per_shard: u64) -> u64 {
    let r = rank - 1;
    let w = hot_shards.max(1);
    let off = (r % w) * keys_per_shard + r / w;
    (center + off) % keys.max(1)
}

// ---------------------------------------------------------------------------
// messages
// ---------------------------------------------------------------------------

/// A GET/PUT request (PUT version = the client's request id, so versions
/// are unique and retries are idempotent under last-write-wins order).
#[derive(Debug, Clone, PartialEq)]
pub enum KvMsg {
    Get { client: u64, rid: u64, key: u64 },
    Put { client: u64, rid: u64, key: u64 },
}

impl Default for KvMsg {
    fn default() -> Self {
        KvMsg::Get {
            client: 0,
            rid: 0,
            key: 0,
        }
    }
}

impl Pup for KvMsg {
    fn pup(&mut self, p: &mut Puper) {
        let mut t: u8 = match self {
            KvMsg::Get { .. } => 0,
            KvMsg::Put { .. } => 1,
        };
        p.p(&mut t);
        let (mut c, mut r, mut k) = match self {
            KvMsg::Get { client, rid, key } | KvMsg::Put { client, rid, key } => {
                (*client, *rid, *key)
            }
        };
        charm_pup::pup_all!(p; c, r, k);
        if p.is_unpacking() {
            *self = match t {
                0 => KvMsg::Get {
                    client: c,
                    rid: r,
                    key: k,
                },
                _ => KvMsg::Put {
                    client: c,
                    rid: r,
                    key: k,
                },
            };
        }
    }
}

#[derive(Debug, Clone, Default, PartialEq)]
enum ClientMsg {
    /// Begin generating.
    #[default]
    Start,
    /// Self-tick: issue every arrival that is due, schedule the next.
    Gen,
    /// A shard acknowledged request `rid`.
    Ack { rid: u64 },
    /// Driver poll: scan retries, keep generating, contribute status.
    Poll { round: u64 },
}

impl Pup for ClientMsg {
    fn pup(&mut self, p: &mut Puper) {
        let mut t: u8 = match self {
            ClientMsg::Start => 0,
            ClientMsg::Gen => 1,
            ClientMsg::Ack { .. } => 2,
            ClientMsg::Poll { .. } => 3,
        };
        p.p(&mut t);
        let mut v: u64 = match self {
            ClientMsg::Ack { rid } => *rid,
            ClientMsg::Poll { round } => *round,
            _ => 0,
        };
        p.p(&mut v);
        if p.is_unpacking() {
            *self = match t {
                0 => ClientMsg::Start,
                1 => ClientMsg::Gen,
                2 => ClientMsg::Ack { rid: v },
                _ => ClientMsg::Poll { round: v },
            };
        }
    }
}

#[derive(Debug, Clone, Default, PartialEq)]
enum DriverMsg {
    #[default]
    Kick,
    Tick,
}

impl Pup for DriverMsg {
    fn pup(&mut self, p: &mut Puper) {
        let mut t: u8 = match self {
            DriverMsg::Kick => 0,
            DriverMsg::Tick => 1,
        };
        p.p(&mut t);
        if p.is_unpacking() {
            *self = if t == 0 { DriverMsg::Kick } else { DriverMsg::Tick };
        }
    }
}

// ---------------------------------------------------------------------------
// shards
// ---------------------------------------------------------------------------

/// A KV shard: a last-write-wins register per key, ordered by
/// `(version, client)`.
#[derive(Default)]
struct Shard {
    /// key → (version, writing client). BTreeMap for deterministic PUP
    /// bytes (iteration order is part of the checkpoint digest).
    store: BTreeMap<u64, (u64, u64)>,
    flops_per_get: f64,
    flops_per_put: f64,
    gets_served: u64,
    puts_applied: u64,
    stale_puts: u64,
    clients: ArrayProxy<Client>,
}

impl Pup for Shard {
    fn pup(&mut self, p: &mut Puper) {
        charm_pup::pup_all!(
            p;
            self.store, self.flops_per_get, self.flops_per_put,
            self.gets_served, self.puts_applied, self.stale_puts, self.clients
        );
    }
}

impl Chare for Shard {
    type Msg = KvMsg;

    fn on_message(&mut self, msg: KvMsg, ctx: &mut Ctx<'_>) {
        match msg {
            KvMsg::Get { client, rid, .. } => {
                ctx.work(self.flops_per_get);
                self.gets_served += 1;
                ctx.send(self.clients, Ix::i1(client as i64), ClientMsg::Ack { rid });
            }
            KvMsg::Put { client, rid, key } => {
                ctx.work(self.flops_per_put);
                // Last-write-wins on (version, client): retries and
                // post-rollback re-drives are idempotent, supersession is
                // deterministic.
                let newer = match self.store.get(&key) {
                    Some(&cur) => (rid, client) > cur,
                    None => true,
                };
                if newer {
                    self.store.insert(key, (rid, client));
                    self.puts_applied += 1;
                } else {
                    self.stale_puts += 1;
                }
                ctx.send(self.clients, Ix::i1(client as i64), ClientMsg::Ack { rid });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// clients
// ---------------------------------------------------------------------------

#[derive(Debug, Default, Clone, PartialEq)]
struct PendingReq {
    key: u64,
    is_put: bool,
    /// Intended (open-loop) arrival time — latency is measured from here,
    /// so generator scheduling lag counts against the SLO (no coordinated
    /// omission).
    arrival_ns: u64,
    /// Last transmission (retry pacing).
    sent_ns: u64,
}

charm_pup::impl_pup_struct!(PendingReq {
    key,
    is_put,
    arrival_ns,
    sent_ns
});

#[derive(Default)]
struct Client {
    id: u64,
    target: u64,
    issued: u64,
    acked: u64,
    acked_puts: u64,
    retries: u64,
    arrivals: PoissonArrivals,
    zipf: ZipfSampler,
    rng: SplitMix64,
    /// Arrival time of the next not-yet-issued request (0 = draw one).
    next_arrival_ns: u64,
    /// A Gen self-tick is in flight (rollback purges it; see `on_event`).
    gen_inflight: bool,
    pending: BTreeMap<u64, PendingReq>,
    /// key → highest acknowledged PUT version (the durability watermark
    /// [`verify_acked_puts`] checks against the shards).
    acked_ver: BTreeMap<u64, u64>,
    lat: LogHist,
    lat_sum_ns: u64,
    // key geometry
    keys: u64,
    keys_per_shard: u64,
    hot_shards: u64,
    drift_period_ns: u64,
    drift_step_keys: u64,
    put_fraction: f64,
    retry_ns: u64,
    num_shards: u64,
    num_pes: u64,
    shards: ArrayProxy<Shard>,
    clients: ArrayProxy<Client>,
    driver: ArrayProxy<Driver>,
    tram: Option<Tram<Shard>>,
    tbuf: TramBuf<Shard>,
}

impl Pup for Client {
    fn pup(&mut self, p: &mut Puper) {
        charm_pup::pup_all!(
            p;
            self.id, self.target, self.issued, self.acked, self.acked_puts,
            self.retries, self.arrivals, self.zipf, self.rng,
            self.next_arrival_ns, self.gen_inflight, self.pending,
            self.acked_ver, self.lat, self.lat_sum_ns, self.keys,
            self.keys_per_shard, self.hot_shards, self.drift_period_ns,
            self.drift_step_keys, self.put_fraction, self.retry_ns,
            self.num_shards, self.num_pes, self.shards, self.clients,
            self.driver, self.tram, self.tbuf
        );
    }
}

impl Client {
    fn send_req(&mut self, ctx: &mut Ctx<'_>, rid: u64, key: u64, is_put: bool) {
        let msg = if is_put {
            KvMsg::Put {
                client: self.id,
                rid,
                key,
            }
        } else {
            KvMsg::Get {
                client: self.id,
                rid,
                key,
            }
        };
        let shard = key / self.keys_per_shard.max(1);
        if let Some(t) = self.tram {
            let home_pe = (shard * self.num_pes / self.num_shards.max(1)) as usize;
            t.send_via(ctx, &mut self.tbuf, home_pe, Ix::i1(shard as i64), msg);
        } else {
            ctx.send(self.shards, Ix::i1(shard as i64), msg);
        }
    }

    /// Issue every due arrival, then schedule a Gen wake-up for the next.
    fn pump(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now().0;
        while self.issued < self.target {
            if self.next_arrival_ns == 0 {
                self.next_arrival_ns = self.arrivals.next_arrival_ns();
            }
            if self.next_arrival_ns > now {
                if !self.gen_inflight {
                    self.gen_inflight = true;
                    ctx.send_after(
                        SimTime(self.next_arrival_ns - now),
                        self.clients,
                        Ix::i1(self.id as i64),
                        ClientMsg::Gen,
                    );
                }
                break;
            }
            let arrival = self.next_arrival_ns;
            self.next_arrival_ns = 0;
            self.issued += 1;
            let rid = self.issued;
            let rank = self.zipf.sample(&mut self.rng);
            let center = hot_center(
                arrival,
                SimTime(self.drift_period_ns),
                self.drift_step_keys,
                self.keys,
            );
            let key = zipf_key(rank, center, self.keys, self.hot_shards, self.keys_per_shard);
            let is_put = self.rng.next_f64() < self.put_fraction;
            self.pending.insert(
                rid,
                PendingReq {
                    key,
                    is_put,
                    arrival_ns: arrival,
                    sent_ns: now,
                },
            );
            self.send_req(ctx, rid, key, is_put);
        }
        if let Some(t) = self.tram {
            t.flush_via(ctx, &mut self.tbuf);
        }
    }

    /// Retransmit requests whose ack is overdue (timeout or purged by a
    /// rollback).
    fn scan_retries(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now().0;
        let due: Vec<u64> = self
            .pending
            .iter()
            .filter(|(_, p)| now.saturating_sub(p.sent_ns) >= self.retry_ns)
            .map(|(&rid, _)| rid)
            .collect();
        for rid in due {
            let (key, is_put) = {
                let p = self.pending.get_mut(&rid).expect("pending entry");
                p.sent_ns = now;
                (p.key, p.is_put)
            };
            self.retries += 1;
            self.send_req(ctx, rid, key, is_put);
        }
        if let Some(t) = self.tram {
            t.flush_via(ctx, &mut self.tbuf);
        }
    }

    fn done(&self) -> bool {
        self.issued >= self.target && self.pending.is_empty()
    }
}

impl Chare for Client {
    type Msg = ClientMsg;

    fn on_message(&mut self, msg: ClientMsg, ctx: &mut Ctx<'_>) {
        match msg {
            ClientMsg::Start => self.pump(ctx),
            ClientMsg::Gen => {
                self.gen_inflight = false;
                self.pump(ctx);
            }
            ClientMsg::Ack { rid } => {
                // Duplicate acks (from retries) miss the map and are ignored.
                if let Some(p) = self.pending.remove(&rid) {
                    let lat = ctx.now().0.saturating_sub(p.arrival_ns);
                    self.lat.add(lat);
                    self.lat_sum_ns += lat;
                    self.acked += 1;
                    if p.is_put {
                        self.acked_puts += 1;
                        let v = self.acked_ver.entry(p.key).or_insert(0);
                        if rid > *v {
                            *v = rid;
                        }
                    }
                }
            }
            ClientMsg::Poll { round } => {
                self.scan_retries(ctx);
                self.pump(ctx);
                let mut v = Vec::with_capacity(3 + LogHist::num_buckets());
                v.push(if self.done() { 1 } else { 0 });
                v.push(self.acked as i64);
                v.push(self.retries as i64);
                v.extend(self.lat.counts().iter().map(|&c| c as i64));
                ctx.contribute(
                    self.clients,
                    round as u32,
                    RedValue::VecI64(v),
                    RedOp::Sum,
                    Callback::ToChare {
                        array: self.driver.id(),
                        ix: Ix::i1(0),
                    },
                );
            }
        }
    }

    fn on_event(&mut self, ev: SysEvent, _ctx: &mut Ctx<'_>) {
        if let SysEvent::Restarted { .. } = ev {
            // The in-flight Gen tick (and any in-flight requests/acks) were
            // purged with the rollback; the next driver poll re-arms
            // generation and the retry scan re-drives pending requests.
            self.gen_inflight = false;
        }
    }
}

// ---------------------------------------------------------------------------
// driver
// ---------------------------------------------------------------------------

#[derive(Default)]
struct Driver {
    round: u64,
    n_clients: u64,
    poll_ns: u64,
    max_polls: u64,
    finished: bool,
    clients: ArrayProxy<Client>,
    driver: ArrayProxy<Driver>,
}

impl Pup for Driver {
    fn pup(&mut self, p: &mut Puper) {
        charm_pup::pup_all!(
            p;
            self.round, self.n_clients, self.poll_ns, self.max_polls,
            self.finished, self.clients, self.driver
        );
    }
}

impl Chare for Driver {
    type Msg = DriverMsg;

    fn on_message(&mut self, msg: DriverMsg, ctx: &mut Ctx<'_>) {
        match msg {
            DriverMsg::Kick => {
                ctx.broadcast(self.clients, ClientMsg::Start);
                ctx.send_after(
                    SimTime(self.poll_ns),
                    self.driver,
                    Ix::i1(0),
                    DriverMsg::Tick,
                );
            }
            DriverMsg::Tick => {
                if self.finished {
                    return;
                }
                self.round += 1;
                if self.round > self.max_polls {
                    ctx.log_metric("kv_stuck", self.round as f64);
                    self.finished = true;
                    ctx.exit();
                    return;
                }
                ctx.broadcast(self.clients, ClientMsg::Poll { round: self.round });
            }
        }
    }

    fn on_event(&mut self, ev: SysEvent, ctx: &mut Ctx<'_>) {
        match ev {
            SysEvent::Reduction { tag, value } => {
                if self.finished || tag != self.round as u32 {
                    return; // stale round (can follow a rollback re-drive)
                }
                let v = match value {
                    RedValue::VecI64(v) => v,
                    _ => return,
                };
                if v.len() < 3 {
                    return;
                }
                let done = v[0] as u64;
                let acked = v[1];
                let counts: Vec<u64> = v[3..].iter().map(|&c| c.max(0) as u64).collect();
                let hist = LogHist::from_counts(&counts);
                ctx.log_metric("kv_acked", acked as f64);
                ctx.log_metric("kv_p99_us", hist.quantile(0.99) as f64 / 1e3);
                if done >= self.n_clients {
                    self.finished = true;
                    ctx.exit();
                } else {
                    ctx.send_after(
                        SimTime(self.poll_ns),
                        self.driver,
                        Ix::i1(0),
                        DriverMsg::Tick,
                    );
                }
            }
            // The in-flight poll round (broadcast, contributions, or the
            // Tick itself) was purged; restart the chain.
            SysEvent::Restarted { .. } if !self.finished => {
                ctx.send_after(
                    SimTime(self.poll_ns),
                    self.driver,
                    Ix::i1(0),
                    DriverMsg::Tick,
                );
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------------
// host driver
// ---------------------------------------------------------------------------

fn fnv(h: u64, x: u64) -> u64 {
    (h ^ x).wrapping_mul(0x100_0000_01b3)
}

/// Run the KV service to completion.
pub fn run(config: KvConfig) -> KvRun {
    let (run, _rt) = run_with_runtime(config);
    run
}

/// Run the KV service and hand back the runtime for inspection (replay
/// logs, traces, invariant checks).
pub fn run_with_runtime(mut config: KvConfig) -> (KvRun, Runtime) {
    let pes = config.machine.num_pes.max(1);
    let flops_per_sec = config.machine.flops_per_sec;
    let num_shards = (pes * config.shards_per_pe).max(1);
    let keys = num_shards as u64 * config.keys_per_shard;

    // Open-loop arrival rate from the offered-load fraction.
    let flops_avg = config.put_fraction * config.flops_per_put
        + (1.0 - config.put_fraction) * config.flops_per_get;
    let total_rps = config.offered_load * pes as f64 * flops_per_sec / flops_avg.max(1.0);
    let n_clients = config.clients.max(1);
    let mean_ns = n_clients as f64 * 1e9 / total_rps;

    let mut b = Runtime::builder(std::mem::replace(
        &mut config.machine,
        MachineConfig::homogeneous(1),
    ))
    .seed(config.seed)
    .threads(config.threads)
    .lb_trigger(LbTrigger::AtSync);
    if let Some(s) = config.strategy.take() {
        b = b.strategy(s);
    }
    if let Some(interval) = config.auto_ckpt {
        b = b.auto_checkpoint(interval);
    }
    if let Some(rc) = config.record.take() {
        b = b.record(rc);
    }
    if let Some(pc) = config.perturb.take() {
        b = b.perturb(pc);
    }
    if let Some(tc) = config.trace.take() {
        b = b.tracing(tc);
    }
    if let Some(ec) = config.elastic.take() {
        b = b.elastic(ec);
    }
    let mut rt = b.build();
    for s in config.trace_sinks.drain(..) {
        rt.add_trace_sink(s);
    }
    for (t, pe) in &config.failures {
        rt.schedule_failure(*t, *pe);
    }
    for (t, pe, warning) in &config.preemptions {
        rt.schedule_preemption(*t, *pe, *warning);
    }

    let shards: ArrayProxy<Shard> = rt.create_array("kv_shards");
    let clients: ArrayProxy<Client> = rt.create_array("kv_clients");
    let driver: ArrayProxy<Driver> = rt.create_array("kv_driver");
    rt.set_at_sync(shards, true);
    let tram = config
        .tram
        .take()
        .map(|cfg| Tram::attach(&mut rt, "kv_tram", shards, cfg));

    // Blocked placement: consecutive shards share a PE, so a contiguous
    // hot region overloads few PEs until LB spreads it.
    for s in 0..num_shards {
        let pe = s * pes / num_shards;
        rt.insert(
            shards,
            Ix::i1(s as i64),
            Shard {
                flops_per_get: config.flops_per_get,
                flops_per_put: config.flops_per_put,
                clients,
                ..Shard::default()
            },
            Some(pe),
        );
    }
    for c in 0..n_clients {
        let salt = |k: u64| {
            let mut m = SplitMix64::new(config.seed ^ (c as u64).wrapping_mul(0x9E37_79B9) ^ k);
            m.next_u64()
        };
        rt.insert(
            clients,
            Ix::i1(c as i64),
            Client {
                id: c as u64,
                target: config.requests_per_client,
                arrivals: PoissonArrivals::new(salt(1), mean_ns),
                zipf: ZipfSampler::new(keys.clamp(1, 4096), config.zipf_s),
                rng: SplitMix64::new(salt(2)),
                keys,
                keys_per_shard: config.keys_per_shard,
                hot_shards: config.hot_shards as u64,
                drift_period_ns: config.drift_period.0,
                drift_step_keys: config.drift_step_shards as u64 * config.keys_per_shard,
                put_fraction: config.put_fraction,
                retry_ns: config.retry_timeout.0,
                num_shards: num_shards as u64,
                num_pes: pes as u64,
                shards,
                clients,
                driver,
                tram,
                tbuf: TramBuf::with_threshold(16),
                ..Client::default()
            },
            Some(c % pes),
        );
    }
    rt.insert(
        driver,
        Ix::i1(0),
        Driver {
            n_clients: n_clients as u64,
            poll_ns: config.poll_period.0,
            max_polls: config.max_polls,
            clients,
            driver,
            ..Driver::default()
        },
        Some(0),
    );

    if let Some(period) = config.lb_period {
        rt.schedule_periodic_lb(period, 10_000);
    }
    rt.send(driver, Ix::i1(0), DriverMsg::Kick);
    let summary = rt.run();

    // ---- host-side collection ------------------------------------------
    let mut lat = LogHist::new();
    let mut lat_sum = 0u64;
    let (mut acked, mut acked_puts, mut retries) = (0u64, 0u64, 0u64);
    for c in 0..n_clients {
        rt.inspect(clients, &Ix::i1(c as i64), |cl: &Client| {
            lat.merge(&cl.lat);
            lat_sum += cl.lat_sum_ns;
            acked += cl.acked;
            acked_puts += cl.acked_puts;
            retries += cl.retries;
        });
    }
    let mut store_digest = 0u64;
    let mut stale_puts = 0u64;
    for s in 0..num_shards {
        rt.inspect(shards, &Ix::i1(s as i64), |sh: &Shard| {
            let mut d = 0xcbf2_9ce4_8422_2325u64;
            for (&k, &(ver, client)) in &sh.store {
                d = fnv(fnv(fnv(d, k), ver), client);
            }
            // Wrapping add keeps the combined digest independent of shard
            // visit order (and of which PE each shard ended up on).
            store_digest = store_digest.wrapping_add(d);
            stale_puts += sh.stale_puts;
        });
    }
    let state_digest = rt
        .state_digest()
        .into_iter()
        .fold(0xcbf2_9ce4_8422_2325u64, |h, (_, d)| fnv(h, d));

    let duration_s = summary.end_time.as_secs_f64();
    let migrations = rt.lb_rounds().iter().map(|r| r.migrations).sum();
    let run = KvRun {
        offered_rps: total_rps,
        acked,
        acked_puts,
        retries,
        stale_puts,
        duration_s,
        throughput_rps: if duration_s > 0.0 {
            acked as f64 / duration_s
        } else {
            0.0
        },
        mean_latency_s: if acked > 0 {
            lat_sum as f64 / acked as f64 / 1e9
        } else {
            0.0
        },
        p50_s: lat.quantile(0.5) as f64 / 1e9,
        p99_s: lat.quantile(0.99) as f64 / 1e9,
        p999_s: lat.quantile(0.999) as f64 / 1e9,
        latency: lat,
        p99_series: rt.metric("kv_p99_us").to_vec(),
        lb_rounds: rt.lb_rounds().len(),
        migrations,
        reconfigures: rt.metric("reconfigure").len(),
        rollbacks: rt.metric("restart_time_s").len(),
        avg_utilization: summary.avg_utilization,
        entries: summary.entries,
        messages: summary.messages,
        store_digest,
        state_digest,
        unrecoverable: rt.unrecoverable().map(|u| u.to_string()),
    };
    (run, rt)
}

/// Check the durability invariant after a run: for every client and key,
/// the highest *acknowledged* PUT version is present in (or superseded by)
/// the shard's register — i.e. no acked PUT was lost, across any number of
/// rollbacks. Returns the number of acked PUT watermarks checked.
pub fn verify_acked_puts(rt: &Runtime) -> Result<usize, String> {
    let clients_id = rt
        .array_id("kv_clients")
        .ok_or("no kv_clients array (not a kv run?)")?;
    let shards_id = rt.array_id("kv_shards").ok_or("no kv_shards array")?;
    let clients: ArrayProxy<Client> = ArrayProxy::from_id(clients_id);
    let shards: ArrayProxy<Shard> = ArrayProxy::from_id(shards_id);

    // Gather every shard's registers into one map.
    let mut store: BTreeMap<u64, (u64, u64)> = BTreeMap::new();
    for ix in rt.array_indices(shards_id) {
        rt.inspect(shards, &ix, |sh: &Shard| {
            for (&k, &v) in &sh.store {
                store.insert(k, v);
            }
        });
    }
    let mut checked = 0usize;
    for ix in rt.array_indices(clients_id) {
        let result = rt.inspect(clients, &ix, |cl: &Client| {
            for (&key, &ver) in &cl.acked_ver {
                checked += 1;
                match store.get(&key) {
                    Some(&cur) if cur >= (ver, cl.id) => {}
                    Some(&(cv, cc)) => {
                        return Err(format!(
                            "acked PUT lost: client {} key {} ver {} but store has ({cv},{cc})",
                            cl.id, key, ver
                        ));
                    }
                    None => {
                        return Err(format!(
                            "acked PUT lost: client {} key {} ver {} absent from store",
                            cl.id, key, ver
                        ));
                    }
                }
            }
            Ok(())
        });
        result.unwrap_or(Ok(()))?;
    }
    Ok(checked)
}

#[cfg(test)]
mod tests {
    use super::*;
    use charm_machine::presets;

    #[test]
    fn key_geometry() {
        // Interleave: consecutive ranks land one shard apart inside the
        // hot region, wrapping deeper after `hot_shards` ranks.
        let (keys, w, kps) = (4096u64, 16u64, 64u64);
        assert_eq!(zipf_key(1, 0, keys, w, kps), 0);
        assert_eq!(zipf_key(2, 0, keys, w, kps), 64);
        assert_eq!(zipf_key(17, 0, keys, w, kps), 1);
        assert_eq!(zipf_key(1, 4090, keys, w, kps), 4090);
        assert_eq!(zipf_key(2, 4090, keys, w, kps), (4090 + 64) % keys);
        // Drift advances by whole periods.
        let p = SimTime::from_millis(10);
        assert_eq!(hot_center(0, p, 100, 4096), 0);
        assert_eq!(hot_center(p.0 - 1, p, 100, 4096), 0);
        assert_eq!(hot_center(p.0, p, 100, 4096), 100);
        assert_eq!(hot_center(3 * p.0, p, 100, 4096), 300);
    }

    #[test]
    fn service_completes_and_is_deterministic() {
        let mk = || {
            let mut c = KvConfig::service(presets::cloud(4), 40);
            c.clients = 4;
            c
        };
        let a = run(mk());
        assert_eq!(a.acked, 4 * 40);
        assert!(a.acked_puts > 0);
        assert!(a.p50_s > 0.0 && a.p50_s <= a.p99_s && a.p99_s <= a.p999_s);
        assert!(a.throughput_rps > 0.0);
        assert!(a.unrecoverable.is_none());
        let b = run(mk());
        assert_eq!(a.store_digest, b.store_digest);
        assert_eq!(a.state_digest, b.state_digest);
        assert_eq!(a.latency.counts(), b.latency.counts());
    }

    #[test]
    fn tram_requests_arrive_too() {
        let mut c = KvConfig::service(presets::cloud(4), 30);
        c.clients = 4;
        c.tram = Some(TramConfig {
            ndims: 2,
            flush_threshold: 8,
            flush_interval: Some(SimTime::from_micros(200)),
        });
        let direct = {
            let mut d = KvConfig::service(presets::cloud(4), 30);
            d.clients = 4;
            run(d)
        };
        let trammed = run(c);
        assert_eq!(trammed.acked, direct.acked);
        // Same requests, same last-write-wins outcome.
        assert_eq!(trammed.store_digest, direct.store_digest);
    }

    #[test]
    fn acked_put_invariant_holds_without_failures() {
        let mut c = KvConfig::service(presets::cloud(4), 50);
        c.clients = 6;
        c.put_fraction = 0.5;
        let (r, rt) = run_with_runtime(c);
        assert!(r.acked_puts > 0);
        let checked = verify_acked_puts(&rt).expect("invariant");
        assert!(checked > 0);
    }
}
