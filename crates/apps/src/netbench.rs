//! Network micro-benchmarks (§IV-F): the latency/bandwidth probes the
//! paper uses to show that "the underlying network in most clouds performs
//! an order of magnitude worse compared to typical HPC interconnects".

use charm_core::{ArrayProxy, Chare, Ctx, Ix, MachineConfig, Runtime, SysEvent};
use charm_pup::{Pup, Puper};

use crate::util::SyntheticBlob;

#[derive(Default)]
struct Prober {
    is_origin: bool,
    reps_left: u32,
    started: f64,
    bytes: u64,
}

impl Pup for Prober {
    fn pup(&mut self, p: &mut Puper) {
        charm_pup::pup_all!(p; self.is_origin, self.reps_left, self.started, self.bytes);
    }
}

#[derive(Default)]
enum ProbeMsg {
    Ping(SyntheticBlob),
    #[default]
    Pong,
}

impl Pup for ProbeMsg {
    fn pup(&mut self, p: &mut Puper) {
        let mut t: u8 = match self {
            ProbeMsg::Ping(_) => 0,
            ProbeMsg::Pong => 1,
        };
        p.p(&mut t);
        if p.is_unpacking() {
            *self = match t {
                0 => ProbeMsg::Ping(SyntheticBlob::default()),
                _ => ProbeMsg::Pong,
            };
        }
        if let ProbeMsg::Ping(b) = self {
            p.p(b);
        }
    }
}


impl Chare for Prober {
    type Msg = ProbeMsg;

    fn on_message(&mut self, msg: ProbeMsg, ctx: &mut Ctx<'_>) {
        let me = ArrayProxy::<Prober>::from_id(ctx.my_id().array);
        match msg {
            ProbeMsg::Ping(_) => {
                ctx.send(me, Ix::i1(0), ProbeMsg::Pong);
            }
            ProbeMsg::Pong => {
                if self.reps_left > 0 {
                    self.reps_left -= 1;
                    ctx.send(me, Ix::i1(1), ProbeMsg::Ping(SyntheticBlob::new(self.bytes)));
                } else {
                    ctx.log_metric("probe_end", ctx.now().as_secs_f64() - self.started);
                    ctx.exit();
                }
            }
        }
    }

    fn on_event(&mut self, _ev: SysEvent, _ctx: &mut Ctx<'_>) {}
}

/// Measured point-to-point characteristics of a machine's network.
#[derive(Debug, Clone, Copy)]
pub struct NetProbe {
    /// Half round-trip of an empty message, seconds.
    pub latency_s: f64,
    /// Streaming bandwidth from 1 MiB round trips, bytes/second.
    pub bandwidth_bps: f64,
}

/// Ping-pong `reps` messages of `bytes` between PE 0 and PE 1; returns the
/// mean one-way time.
pub fn pingpong(machine: MachineConfig, bytes: u64, reps: u32) -> f64 {
    let mut rt = Runtime::builder(machine).build();
    let arr: ArrayProxy<Prober> = rt.create_array("probers");
    rt.insert(
        arr,
        Ix::i1(0),
        Prober {
            is_origin: true,
            reps_left: reps,
            bytes,
            ..Prober::default()
        },
        Some(0),
    );
    rt.insert(arr, Ix::i1(1), Prober::default(), Some(1));
    rt.send(arr, Ix::i1(0), ProbeMsg::Pong); // kick the origin
    rt.run();
    let total = rt.metric("probe_end").last().expect("probe finished").1;
    total / (2.0 * reps as f64)
}

/// Measure latency (empty messages) and bandwidth (1 MiB messages).
pub fn probe(machine: MachineConfig) -> NetProbe {
    let latency = pingpong(machine.clone(), 0, 50);
    let big = 1 << 20;
    let t_big = pingpong(machine, big, 20);
    NetProbe {
        latency_s: latency,
        bandwidth_bps: big as f64 / (t_big - latency).max(1e-12),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use charm_machine::presets;

    #[test]
    fn cloud_is_an_order_of_magnitude_worse() {
        let mut cloud_cfg = presets::cloud(2);
        cloud_cfg.network.jitter = 0.0; // deterministic probe
        let hpc = probe(presets::stampede(2));
        let cloud = probe(cloud_cfg);
        assert!(
            cloud.latency_s > hpc.latency_s * 10.0,
            "cloud latency {:.2}us vs HPC {:.2}us",
            cloud.latency_s * 1e6,
            hpc.latency_s * 1e6
        );
        assert!(
            hpc.bandwidth_bps > cloud.bandwidth_bps * 10.0,
            "HPC bw {:.1}MB/s vs cloud {:.1}MB/s",
            hpc.bandwidth_bps / 1e6,
            cloud.bandwidth_bps / 1e6
        );
    }

    #[test]
    fn bandwidth_estimate_is_sane() {
        let p = probe(presets::stampede(2));
        // The IB preset is 5 GB/s; the probe should land within 2x.
        assert!(
            p.bandwidth_bps > 2.5e9 && p.bandwidth_bps < 10e9,
            "measured {:.2} GB/s",
            p.bandwidth_bps / 1e9
        );
    }

    #[test]
    fn latency_estimate_is_sane() {
        let p = probe(presets::stampede(2));
        // α=1.5us + overheads: expect a few microseconds one-way.
        assert!(
            p.latency_s > 1e-6 && p.latency_s < 10e-6,
            "measured {:.2}us",
            p.latency_s * 1e6
        );
    }
}
