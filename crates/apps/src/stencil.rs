//! Stencil2D — the over-decomposition / cloud / thermal workhorse
//! (§IV-F Fig. 16, §III-C Fig. 4, and the 77 ms→32 ms overlap result).
//!
//! A 2-D Jacobi sweep over an N×N grid decomposed into B×B chare blocks.
//! Each step: exchange four halos, compute the 5-point stencil, reduce to
//! the driver. With more blocks than PEs, a block's halo wait overlaps
//! another block's compute — the 2.4× cloud result from §IV-F.

use crate::util::SyntheticBlob;
use crate::AppRun;
use charm_core::{
    ArrayProxy, Callback, Chare, Ctx, DvfsScheme, Ix, LbTrigger, MachineConfig, RedOp, RedValue,
    Runtime, SimTime, Strategy, SysEvent,
};
use charm_pup::{Pup, Puper};

/// Configuration for a Stencil2D run.
pub struct StencilConfig {
    /// The machine to run on.
    pub machine: MachineConfig,
    /// Grid points per side of the global domain.
    pub grid: usize,
    /// Chare blocks per side (blocks = chares_per_side²).
    pub blocks_per_side: usize,
    /// Iterations to run.
    pub steps: u64,
    /// Flops charged per grid point per step.
    pub flops_per_point: f64,
    /// Optional LB strategy with RTS-triggered period in steps... seconds.
    pub strategy: Option<Box<dyn Strategy>>,
    /// Period of RTS-triggered LB (None = LB only via DVFS schemes).
    pub lb_period: Option<SimTime>,
    /// DVFS/thermal scheme (§III-C).
    pub dvfs: DvfsScheme,
    /// DVFS sampling period.
    pub dvfs_period: SimTime,
    /// Automatic in-memory checkpoint interval (§III-B).
    pub auto_ckpt: Option<SimTime>,
    /// PE failures to inject, as `(time, pe)` pairs.
    pub failures: Vec<(SimTime, usize)>,
    /// Spot preemptions: (kill time, any PE on the node, warning lead).
    pub preemptions: Vec<(SimTime, usize, SimTime)>,
    /// Closed-loop elastic controller (None = static PE set).
    pub elastic: Option<charm_core::ElasticConfig>,
    /// RNG seed.
    pub seed: u64,
    /// Record a replay log (None = off; see `charm_core::replay`).
    pub record: Option<charm_core::ReplayConfig>,
    /// Schedule perturbation for race hunting (None = off).
    pub perturb: Option<charm_core::PerturbConfig>,
    /// Projections-lite tracing (None = off; see `charm_core::trace`).
    pub trace: Option<charm_core::TraceConfig>,
    /// Streaming trace sinks, installed right after the runtime is built —
    /// before any chare exists — so they observe the complete record
    /// stream. Requires `trace` to be set.
    pub trace_sinks: Vec<Box<dyn charm_core::TraceSink>>,
    /// Simulator worker threads (1 = sequential engine).
    pub threads: usize,
    /// Run on the classic (pre-overhaul) engine hot path: binary-heap
    /// event queue, no arena recycling. A/B regression knob.
    pub classic_hotpath: bool,
    /// Force the sharded engine's global-window lockstep fallback instead
    /// of the adaptive per-shard-pair lookahead. A/B regression knob.
    pub global_window: bool,
}

impl StencilConfig {
    /// The §IV-F cloud setup: 4k×4k grid on 32 single-PE VMs.
    pub fn cloud_4k(machine: MachineConfig, chares_per_pe: usize) -> Self {
        let pes = machine.num_pes;
        let blocks = ((pes * chares_per_pe) as f64).sqrt().ceil() as usize;
        StencilConfig {
            machine,
            grid: 4096,
            blocks_per_side: blocks.max(1),
            steps: 60,
            flops_per_point: 6.0,
            strategy: None,
            lb_period: None,
            dvfs: DvfsScheme::Off,
            dvfs_period: SimTime::from_secs(1),
            auto_ckpt: None,
            failures: Vec::new(),
            preemptions: Vec::new(),
            elastic: None,
            seed: 42,
            record: None,
            perturb: None,
            trace: None,
            trace_sinks: Vec::new(),
            threads: 1,
            classic_hotpath: false,
            global_window: false,
        }
    }
}

#[derive(Default)]
struct Block {
    bx: i32,
    by: i32,
    side: u64,
    points_per_side: u64,
    flops_per_point: f64,
    halos_seen: u8,
    /// Halos for step+1 that raced ahead of our Step message.
    early_halos: u8,
    step: u64,
    data: SyntheticBlob,
    driver: ArrayProxy<Driver>,
    blocks: ArrayProxy<Block>,
    /// Restored from a checkpoint taken mid-step: adopt the driver's step
    /// from the next `Step` broadcast and drop transient halo counters.
    rolled_back: bool,
}

impl Pup for Block {
    fn pup(&mut self, p: &mut Puper) {
        charm_pup::pup_all!(
            p;
            self.bx, self.by, self.side, self.points_per_side,
            self.flops_per_point, self.halos_seen, self.early_halos,
            self.step, self.data, self.driver, self.blocks, self.rolled_back
        );
    }
}

#[derive(Clone)]
enum BlockMsg {
    /// Begin step `s`.
    Step(u64),
    /// A halo strip from a neighbor for step `s`.
    Halo(u64),
}

impl Pup for BlockMsg {
    fn pup(&mut self, p: &mut Puper) {
        let mut t: u8 = match self {
            BlockMsg::Step(_) => 0,
            BlockMsg::Halo(_) => 1,
        };
        p.p(&mut t);
        let mut v = match self {
            BlockMsg::Step(s) | BlockMsg::Halo(s) => *s,
        };
        p.p(&mut v);
        if p.is_unpacking() {
            *self = match t {
                0 => BlockMsg::Step(v),
                _ => BlockMsg::Halo(v),
            };
        }
    }
}

impl Default for BlockMsg {
    fn default() -> Self {
        BlockMsg::Step(0)
    }
}

impl Block {
    fn neighbor(&self, dx: i32, dy: i32) -> Ix {
        let s = self.side as i32;
        Ix::i2((self.bx + dx).rem_euclid(s), (self.by + dy).rem_euclid(s))
    }

    fn send_halos(&mut self, ctx: &mut Ctx<'_>, step: u64) {
        // Halo payload ≈ one strip of doubles; modeled via message size.
        for (dx, dy) in [(1, 0), (-1, 0), (0, 1), (0, -1)] {
            ctx.send(self.blocks, self.neighbor(dx, dy), BlockMsg::Halo(step));
        }
    }

    fn maybe_compute(&mut self, ctx: &mut Ctx<'_>) {
        if self.halos_seen < 4 {
            return;
        }
        self.halos_seen = 0;
        let n = self.points_per_side as f64;
        ctx.work(n * n * self.flops_per_point);
        ctx.contribute(
            self.blocks,
            self.step as u32,
            RedValue::I64(1),
            RedOp::Sum,
            Callback::ToChare {
                array: self.driver.id(),
                ix: Ix::i1(0),
            },
        );
    }
}

impl Chare for Block {
    type Msg = BlockMsg;

    fn on_message(&mut self, msg: BlockMsg, ctx: &mut Ctx<'_>) {
        match msg {
            BlockMsg::Step(s) => {
                if self.rolled_back {
                    // A checkpoint can land mid-step, capturing blocks at
                    // mixed phases; the whole exchange re-runs from the
                    // driver's step.
                    self.rolled_back = false;
                } else {
                    debug_assert!(s == self.step + 1 || (s == 0 && self.step == 0));
                }
                self.step = s;
                self.halos_seen += std::mem::take(&mut self.early_halos);
                self.send_halos(ctx, s);
                self.maybe_compute(ctx);
            }
            BlockMsg::Halo(s) if self.rolled_back => {
                // In-flight messages were purged at rollback, so this is a
                // fresh halo for the re-driven step that raced ahead of our
                // own Step broadcast; hold it until that arrives.
                let _ = s;
                self.early_halos += 1;
            }
            BlockMsg::Halo(s) => {
                // Asynchrony: a neighbor that already started step s+1 can
                // deliver its halo before our own Step(s+1) broadcast.
                if s == self.step {
                    self.halos_seen += 1;
                    self.maybe_compute(ctx);
                } else {
                    debug_assert_eq!(s, self.step + 1, "halo from the far future");
                    self.early_halos += 1;
                }
            }
        }
    }

    fn on_event(&mut self, ev: SysEvent, _ctx: &mut Ctx<'_>) {
        if let SysEvent::Restarted { .. } = ev {
            self.rolled_back = true;
            self.halos_seen = 0;
            self.early_halos = 0;
        }
    }
}

#[derive(Default)]
struct Driver {
    step: u64,
    steps: u64,
    blocks: ArrayProxy<Block>,
}

impl Pup for Driver {
    fn pup(&mut self, p: &mut Puper) {
        charm_pup::pup_all!(p; self.step, self.steps, self.blocks);
    }
}

impl Chare for Driver {
    type Msg = u8;
    fn on_message(&mut self, _m: u8, ctx: &mut Ctx<'_>) {
        ctx.broadcast(self.blocks, BlockMsg::Step(0));
    }
    fn on_event(&mut self, ev: SysEvent, ctx: &mut Ctx<'_>) {
        match ev {
            SysEvent::Reduction { .. } => {
                self.step += 1;
                ctx.log_metric("stencil_step", ctx.now().as_secs_f64());
                if self.step < self.steps {
                    ctx.broadcast(self.blocks, BlockMsg::Step(self.step));
                } else {
                    ctx.exit();
                }
            }
            SysEvent::Restarted { .. } => {
                // Re-drive the step that was in flight when the failure hit
                // (this also replays the initial kick if it was lost).
                if self.step < self.steps {
                    ctx.broadcast(self.blocks, BlockMsg::Step(self.step));
                } else {
                    ctx.exit();
                }
            }
            _ => {}
        }
    }
}

/// Run Stencil2D and return per-step timings.
pub fn run(config: StencilConfig) -> AppRun {
    let (run, _rt) = run_with_runtime(config);
    run
}

/// Run Stencil2D and also hand back the runtime (replay-log and metric
/// inspection).
pub fn run_with_runtime(mut config: StencilConfig) -> (AppRun, Runtime) {
    let mut b = Runtime::builder(std::mem::replace(
        &mut config.machine,
        MachineConfig::homogeneous(1),
    ))
    .seed(config.seed)
    .dvfs(config.dvfs)
    .dvfs_period(config.dvfs_period)
    .threads(config.threads)
    .classic_hotpath(config.classic_hotpath)
    .global_window(config.global_window)
    .lb_trigger(LbTrigger::AtSync);
    if let Some(s) = config.strategy.take() {
        b = b.strategy(s);
    }
    if let Some(interval) = config.auto_ckpt {
        b = b.auto_checkpoint(interval);
    }
    if let Some(rc) = config.record.take() {
        b = b.record(rc);
    }
    if let Some(pc) = config.perturb.take() {
        b = b.perturb(pc);
    }
    if let Some(tc) = config.trace.take() {
        b = b.tracing(tc);
    }
    if let Some(ec) = config.elastic.take() {
        b = b.elastic(ec);
    }
    let mut rt = b.build();
    for s in config.trace_sinks.drain(..) {
        rt.add_trace_sink(s);
    }
    for (t, pe) in &config.failures {
        rt.schedule_failure(*t, *pe);
    }
    for (t, pe, warning) in &config.preemptions {
        rt.schedule_preemption(*t, *pe, *warning);
    }

    let blocks: ArrayProxy<Block> = rt.create_array("stencil_blocks");
    let driver: ArrayProxy<Driver> = rt.create_array("stencil_driver");
    rt.set_at_sync(blocks, true);

    let side = config.blocks_per_side;
    let pts = (config.grid / side).max(1) as u64;
    let bytes_per_block = pts * pts * 8;
    for bx in 0..side as i32 {
        for by in 0..side as i32 {
            let linear = bx as usize * side + by as usize;
            let pe = linear * rt.num_pes() / (side * side);
            rt.insert(
                blocks,
                Ix::i2(bx, by),
                Block {
                    bx,
                    by,
                    side: side as u64,
                    points_per_side: pts,
                    flops_per_point: config.flops_per_point,
                    data: SyntheticBlob::new(bytes_per_block),
                    driver,
                    blocks,
                    ..Block::default()
                },
                Some(pe),
            );
        }
    }
    rt.insert(driver, Ix::i1(0), Driver {
        step: 0,
        steps: config.steps,
        blocks,
    }, Some(0));

    if let Some(period) = config.lb_period {
        rt.schedule_periodic_lb(period, 10_000);
    }
    rt.send(driver, Ix::i1(0), 0u8);
    let summary = rt.run();
    let mut run = crate::collect_app_run(&rt, &summary, "stencil_step");
    // Attach thermal readings when present.
    if let Some(t) = rt.thermal() {
        run.step_times.truncate(config.steps as usize);
        let _ = t;
    }
    (run, rt)
}

/// Run and also report the thermal journal (Fig. 4 needs max temp).
pub fn run_thermal(config: StencilConfig) -> (AppRun, f64) {
    let steps = config.steps;
    let mut b = Runtime::builder(config.machine)
        .seed(config.seed)
        .dvfs(config.dvfs)
        .dvfs_period(config.dvfs_period);
    if let Some(s) = config.strategy {
        b = b.strategy(s);
    }
    let mut rt = b.build();
    let blocks: ArrayProxy<Block> = rt.create_array("stencil_blocks");
    let driver: ArrayProxy<Driver> = rt.create_array("stencil_driver");
    rt.set_at_sync(blocks, true);
    let side = config.blocks_per_side;
    let pts = (config.grid / side).max(1) as u64;
    for bx in 0..side as i32 {
        for by in 0..side as i32 {
            let linear = bx as usize * side + by as usize;
            let pe = linear * rt.num_pes() / (side * side);
            rt.insert(
                blocks,
                Ix::i2(bx, by),
                Block {
                    bx,
                    by,
                    side: side as u64,
                    points_per_side: pts,
                    flops_per_point: config.flops_per_point,
                    data: SyntheticBlob::new(pts * pts * 8),
                    driver,
                    blocks,
                    ..Block::default()
                },
                Some(pe),
            );
        }
    }
    rt.insert(driver, Ix::i1(0), Driver { step: 0, steps, blocks }, Some(0));
    if let Some(period) = config.lb_period {
        rt.schedule_periodic_lb(period, 10_000);
    }
    rt.send(driver, Ix::i1(0), 0u8);
    let summary = rt.run();
    let max_temp = rt
        .thermal()
        .map(|t| t.max_temp_observed())
        .unwrap_or(f64::NAN);
    (crate::collect_app_run(&rt, &summary, "stencil_step"), max_temp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use charm_machine::presets;

    fn base(pes: usize, chares_per_pe: usize, steps: u64) -> StencilConfig {
        let mut c = StencilConfig::cloud_4k(presets::cloud(pes), chares_per_pe);
        c.steps = steps;
        c
    }

    #[test]
    fn completes_all_steps() {
        let r = run(base(8, 2, 10));
        assert_eq!(r.step_times.len(), 10);
        assert!(r.total_s > 0.0);
    }

    #[test]
    fn overdecomposition_hides_latency() {
        // §IV-F: 1 chare/PE → 8 chares/PE gave 77 ms → 32 ms on Ethernet.
        let t1 = run(base(32, 1, 12)).avg_step_s();
        let t8 = run(base(32, 8, 12)).avg_step_s();
        assert!(
            t8 < t1 * 0.75,
            "over-decomposition must hide cloud latency: 1/PE={t1:.4}s 8/PE={t8:.4}s"
        );
    }

    #[test]
    fn interference_slows_iterations_and_lb_recovers() {
        use charm_machine::{InterferenceWindow, SimTime};
        let mk = |with_lb: bool| {
            let mut machine = presets::cloud(16);
            machine.speed = machine.speed.clone().with_interference(InterferenceWindow {
                first_pe: 0,
                num_pes: 1,
                start: SimTime::from_millis(40),
                end: SimTime::MAX,
                speed_factor: 0.4,
            });
            let mut c = base(0, 4, 40);
            c.machine = machine;
            c.blocks_per_side = 8;
            if with_lb {
                // Refinement-based balancing: moves only what the
                // interference displaced (Greedy would churn every block's
                // megabytes through the slow Ethernet each round).
                c.strategy = Some(Box::new(charm_lb::RefineLb::default()));
                c.lb_period = Some(SimTime::from_millis(30));
            }
            c
        };
        let nolb = run(mk(false));
        let lb = run(mk(true));
        assert!(lb.lb_rounds > 0);
        // Median of the trailing steps: a refine round can land a one-off
        // migration spike anywhere, so a mean over a short tail is noisy.
        let last = |r: &AppRun| {
            let d = r.step_durations();
            let mut tail = d[d.len() - 10..].to_vec();
            tail.sort_by(|a, b| a.total_cmp(b));
            tail[tail.len() / 2]
        };
        assert!(
            last(&lb) < last(&nolb) * 0.9,
            "LB must absorb the interference: lb={:.5}s nolb={:.5}s",
            last(&lb),
            last(&nolb)
        );
    }

    #[test]
    fn deterministic() {
        let a = run(base(8, 4, 8));
        let b = run(base(8, 4, 8));
        assert_eq!(a.step_times, b.step_times);
    }

    #[test]
    fn auto_checkpoint_survives_repeated_failures() {
        // A grid small enough that a checkpoint's replication window is
        // short relative to a step — with the 4k grid a single checkpoint
        // ships 128 MB over Ethernet and the first failure would land
        // inside the (first, uncommitted) checkpoint window, which is
        // correctly Unrecoverable rather than a recovery exercise.
        let small = || {
            let mut c = base(8, 2, 12);
            c.grid = 256;
            c
        };
        // Probe run to learn the failure-free duration, then re-run with
        // periodic checkpoints and two failures dropped at arbitrary
        // instants — including potentially mid-step or mid-protocol.
        let probe = run(small());
        let end_t = *probe.step_times.last().unwrap();

        let mut c = small();
        c.auto_ckpt = Some(SimTime::from_secs_f64(end_t / 6.0));
        c.failures = vec![
            (SimTime::from_secs_f64(0.45 * end_t), 2),
            (SimTime::from_secs_f64(0.75 * end_t), 5),
        ];
        let r = run(c);
        // Re-driven steps re-log their metric, so ≥ rather than ==.
        assert!(
            r.step_times.len() >= 12,
            "all steps complete after recovery (got {} steps)",
            r.step_times.len()
        );
        assert!(r.total_s > probe.total_s, "recovery costs time");
    }
}
