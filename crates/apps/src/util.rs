//! Shared helpers for the mini-apps.

use charm_pup::{Pup, Puper};

/// A synthetic payload of `len` bytes that serializes to its full size
/// without keeping the bytes in memory — gives chares (cells full of atoms,
/// mesh blocks, hydro domains) *realistic checkpoint and migration volume*
/// at simulation scale.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct SyntheticBlob {
    len: u64,
}

impl SyntheticBlob {
    /// A blob standing in for `len` bytes of application data.
    pub fn new(len: u64) -> Self {
        SyntheticBlob { len }
    }

    /// Size the blob represents.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True for a zero-sized blob.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Resize (e.g. when atoms move between cells).
    pub fn set_len(&mut self, len: u64) {
        self.len = len;
    }
}

impl Pup for SyntheticBlob {
    fn pup(&mut self, p: &mut Puper) {
        p.p(&mut self.len);
        // Stream the body in fixed chunks: sizing counts it, packing emits
        // zeros, unpacking skips over it — no O(len) resident allocation in
        // the chare itself.
        let mut scratch = [0u8; 4096];
        let mut remaining = self.len;
        while remaining > 0 {
            let n = remaining.min(scratch.len() as u64) as usize;
            p.bytes(&mut scratch[..n]);
            remaining -= n as u64;
        }
    }
}

/// Deterministic spatial density: a Gaussian blob centered at `center`
/// (fractions of the domain), producing per-cell multipliers in
/// `[floor, floor + peak]`. Drives the load imbalance in LeanMD/Barnes-Hut.
pub fn gaussian_density(
    pos: [f64; 3],
    center: [f64; 3],
    sigma: f64,
    floor: f64,
    peak: f64,
) -> f64 {
    let d2: f64 = pos
        .iter()
        .zip(center.iter())
        .map(|(a, b)| {
            // periodic distance in unit cube
            let d = (a - b).abs();
            let d = d.min(1.0 - d);
            d * d
        })
        .sum();
    floor + peak * (-d2 / (2.0 * sigma * sigma)).exp()
}

/// Bit-vector tree index → lattice coordinates at depth `d` (level 0 is
/// the most significant split; child bit k of level i maps to axis k).
pub fn oct_coords(bits: u64, d: u8) -> [u32; 3] {
    let mut c = [0u32; 3];
    for level in 0..d {
        let oct = (bits >> (3 * level)) & 0b111;
        let shift = (d - 1 - level) as u32;
        for (axis, cc) in c.iter_mut().enumerate() {
            if oct & (1 << axis) != 0 {
                *cc |= 1 << shift;
            }
        }
    }
    c
}

/// Lattice coordinates at depth `d` → bit-vector tree index bits.
pub fn oct_bits(c: [u32; 3], d: u8) -> u64 {
    let mut bits = 0u64;
    for level in 0..d {
        let shift = (d - 1 - level) as u32;
        let mut oct = 0u64;
        for (axis, cc) in c.iter().enumerate() {
            if cc & (1 << shift) != 0 {
                oct |= 1 << axis;
            }
        }
        bits |= oct << (3 * level);
    }
    bits
}

#[cfg(test)]
mod tests {
    use super::*;
    use charm_pup::{packed_size, roundtrip, to_bytes};

    #[test]
    fn blob_serializes_to_full_size() {
        let mut b = SyntheticBlob::new(10_000);
        assert_eq!(packed_size(&mut b), 8 + 10_000);
        assert_eq!(to_bytes(&mut b).len(), 8 + 10_000);
        assert_eq!(roundtrip(&mut b), b);
    }

    #[test]
    fn empty_blob() {
        let mut b = SyntheticBlob::new(0);
        assert_eq!(packed_size(&mut b), 8);
        assert!(b.is_empty());
    }

    #[test]
    fn density_peaks_at_center() {
        let c = [0.5, 0.5, 0.5];
        let at_center = gaussian_density(c, c, 0.2, 1.0, 9.0);
        let far = gaussian_density([0.0, 0.0, 0.0], c, 0.2, 1.0, 9.0);
        assert!((at_center - 10.0).abs() < 1e-9);
        assert!(far < at_center);
        assert!(far >= 1.0);
    }

    #[test]
    fn oct_roundtrip() {
        for d in 1..=4u8 {
            let side = 1u32 << d;
            for x in (0..side).step_by(3) {
                for y in (0..side).step_by(2) {
                    for z in 0..side.min(4) {
                        assert_eq!(oct_coords(oct_bits([x, y, z], d), d), [x, y, z]);
                    }
                }
            }
        }
    }

    #[test]
    fn density_is_periodic() {
        let c = [0.0, 0.5, 0.5];
        let a = gaussian_density([0.95, 0.5, 0.5], c, 0.2, 1.0, 5.0);
        let b = gaussian_density([0.05, 0.5, 0.5], c, 0.2, 1.0, 5.0);
        assert!((a - b).abs() < 1e-9, "wraparound symmetric");
    }
}
