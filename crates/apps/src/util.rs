//! Shared helpers for the mini-apps.

use charm_pup::{Pup, Puper};

/// A synthetic payload of `len` bytes that serializes to its full size
/// without keeping the bytes in memory — gives chares (cells full of atoms,
/// mesh blocks, hydro domains) *realistic checkpoint and migration volume*
/// at simulation scale.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct SyntheticBlob {
    len: u64,
}

impl SyntheticBlob {
    /// A blob standing in for `len` bytes of application data.
    pub fn new(len: u64) -> Self {
        SyntheticBlob { len }
    }

    /// Size the blob represents.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True for a zero-sized blob.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Resize (e.g. when atoms move between cells).
    pub fn set_len(&mut self, len: u64) {
        self.len = len;
    }
}

impl Pup for SyntheticBlob {
    fn pup(&mut self, p: &mut Puper) {
        p.p(&mut self.len);
        // Stream the body in fixed chunks: sizing counts it, packing emits
        // zeros, unpacking skips over it — no O(len) resident allocation in
        // the chare itself.
        let mut scratch = [0u8; 4096];
        let mut remaining = self.len;
        while remaining > 0 {
            let n = remaining.min(scratch.len() as u64) as usize;
            p.bytes(&mut scratch[..n]);
            remaining -= n as u64;
        }
    }
}

/// Deterministic spatial density: a Gaussian blob centered at `center`
/// (fractions of the domain), producing per-cell multipliers in
/// `[floor, floor + peak]`. Drives the load imbalance in LeanMD/Barnes-Hut.
pub fn gaussian_density(
    pos: [f64; 3],
    center: [f64; 3],
    sigma: f64,
    floor: f64,
    peak: f64,
) -> f64 {
    let d2: f64 = pos
        .iter()
        .zip(center.iter())
        .map(|(a, b)| {
            // periodic distance in unit cube
            let d = (a - b).abs();
            let d = d.min(1.0 - d);
            d * d
        })
        .sum();
    floor + peak * (-d2 / (2.0 * sigma * sigma)).exp()
}

/// Bit-vector tree index → lattice coordinates at depth `d` (level 0 is
/// the most significant split; child bit k of level i maps to axis k).
pub fn oct_coords(bits: u64, d: u8) -> [u32; 3] {
    let mut c = [0u32; 3];
    for level in 0..d {
        let oct = (bits >> (3 * level)) & 0b111;
        let shift = (d - 1 - level) as u32;
        for (axis, cc) in c.iter_mut().enumerate() {
            if oct & (1 << axis) != 0 {
                *cc |= 1 << shift;
            }
        }
    }
    c
}

/// Lattice coordinates at depth `d` → bit-vector tree index bits.
pub fn oct_bits(c: [u32; 3], d: u8) -> u64 {
    let mut bits = 0u64;
    for level in 0..d {
        let shift = (d - 1 - level) as u32;
        let mut oct = 0u64;
        for (axis, cc) in c.iter().enumerate() {
            if cc & (1 << shift) != 0 {
                oct |= 1 << axis;
            }
        }
        bits |= oct << (3 * level);
    }
    bits
}

/// SplitMix64 — a tiny seedable PRNG for the traffic generators. Chares
/// that carry one serialize 8 bytes of state, so a checkpoint rollback
/// resumes the *exact same* stream (the KV service's replay-after-restart
/// correctness leans on this).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded with `seed` (every seed is a valid stream).
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform double in `[0, 1)` (53-bit mantissa).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`.
    pub fn next_below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Multiply-shift; bias is < 2^-53 for the ranges the apps use.
        ((self.next_f64() * n as f64) as u64).min(n - 1)
    }
}

impl Pup for SplitMix64 {
    fn pup(&mut self, p: &mut Puper) {
        p.p(&mut self.state);
    }
}

/// Open-loop Poisson arrival stream: exponential inter-arrival times with
/// the given mean, in integer nanoseconds of virtual time. Arrival times
/// are a function of (seed, draw count) only — client completions never
/// push back, which is what makes the offered load "open loop".
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct PoissonArrivals {
    rng: SplitMix64,
    mean_ns: f64,
    /// Virtual time of the last arrival produced (ns).
    t_ns: u64,
}

impl PoissonArrivals {
    /// A stream with mean inter-arrival `mean_ns` nanoseconds.
    pub fn new(seed: u64, mean_ns: f64) -> Self {
        assert!(mean_ns > 0.0);
        PoissonArrivals {
            rng: SplitMix64::new(seed),
            mean_ns,
            t_ns: 0,
        }
    }

    /// Virtual time (ns) of the next arrival. Monotone non-decreasing.
    pub fn next_arrival_ns(&mut self) -> u64 {
        // Inverse-CDF: −ln(1−u)·mean, u ∈ [0,1). Clamp to ≥1 ns so two
        // arrivals never collapse onto the same instant.
        let u = self.rng.next_f64();
        let dt = (-(1.0 - u).ln() * self.mean_ns).max(1.0);
        self.t_ns = self.t_ns.saturating_add(dt as u64);
        self.t_ns
    }
}

impl Pup for PoissonArrivals {
    fn pup(&mut self, p: &mut Puper) {
        charm_pup::pup_all!(p; self.rng, self.mean_ns, self.t_ns);
    }
}

/// Bounded Zipf(s) sampler over ranks `1..=n` by rejection inversion of
/// the integral of the unnormalized density (the standard
/// rejection-inversion scheme for power laws): O(1) per sample with no
/// tables, any exponent `s > 0`, and fully deterministic given the caller's
/// [`SplitMix64`].
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct ZipfSampler {
    n: u64,
    s: f64,
    h_x1: f64,
    h_n: f64,
    threshold: f64,
}

impl ZipfSampler {
    /// A sampler over ranks `1..=n` with exponent `s` (P(rank=k) ∝ k^−s).
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n >= 1 && s > 0.0);
        let mut z = ZipfSampler {
            n,
            s,
            h_x1: 0.0,
            h_n: 0.0,
            threshold: 0.0,
        };
        z.h_x1 = z.h_integral(1.5) - 1.0;
        z.h_n = z.h_integral(n as f64 + 0.5);
        z.threshold = 2.0 - z.h_integral_inverse(z.h_integral(2.5) - z.h(2.0));
        z
    }

    /// Rank count the sampler draws from.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Exact probability of rank `k` (for tests and reporting).
    pub fn prob(&self, k: u64) -> f64 {
        let h: f64 = (1..=self.n).map(|i| (i as f64).powf(-self.s)).sum();
        (k as f64).powf(-self.s) / h
    }

    fn h(&self, x: f64) -> f64 {
        x.powf(-self.s)
    }

    /// ∫ x^−s dx, shifted so s = 1 is continuous (log form).
    fn h_integral(&self, x: f64) -> f64 {
        let log_x = x.ln();
        helper1((1.0 - self.s) * log_x) * log_x
    }

    fn h_integral_inverse(&self, x: f64) -> f64 {
        let mut t = x * (1.0 - self.s);
        if t < -1.0 {
            t = -1.0;
        }
        (helper2(t) * x).exp()
    }

    /// Draw one rank in `1..=n`.
    pub fn sample(&self, rng: &mut SplitMix64) -> u64 {
        loop {
            let u = self.h_n + rng.next_f64() * (self.h_x1 - self.h_n);
            let x = self.h_integral_inverse(u);
            let k64 = (x + 0.5) as u64;
            let k = k64.clamp(1, self.n);
            let kf = k as f64;
            if kf - x <= self.threshold
                || u >= self.h_integral(kf + 0.5) - self.h(kf)
            {
                return k;
            }
        }
    }
}

impl Pup for ZipfSampler {
    fn pup(&mut self, p: &mut Puper) {
        charm_pup::pup_all!(p; self.n, self.s, self.h_x1, self.h_n, self.threshold);
    }
}

/// (exp(x) − 1) / x, stable near 0.
fn helper1(x: f64) -> f64 {
    if x.abs() > 1e-8 {
        x.exp_m1() / x
    } else {
        1.0 + x * 0.5 * (1.0 + x / 3.0 * (1.0 + 0.25 * x))
    }
}

/// ln(1 + x) / x, stable near 0.
fn helper2(x: f64) -> f64 {
    if x.abs() > 1e-8 {
        x.ln_1p() / x
    } else {
        1.0 - x * 0.5 * (1.0 - x / 3.0 * (1.0 - 0.25 * x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use charm_pup::{packed_size, roundtrip, to_bytes};

    #[test]
    fn blob_serializes_to_full_size() {
        let mut b = SyntheticBlob::new(10_000);
        assert_eq!(packed_size(&mut b), 8 + 10_000);
        assert_eq!(to_bytes(&mut b).len(), 8 + 10_000);
        assert_eq!(roundtrip(&mut b), b);
    }

    #[test]
    fn empty_blob() {
        let mut b = SyntheticBlob::new(0);
        assert_eq!(packed_size(&mut b), 8);
        assert!(b.is_empty());
    }

    #[test]
    fn density_peaks_at_center() {
        let c = [0.5, 0.5, 0.5];
        let at_center = gaussian_density(c, c, 0.2, 1.0, 9.0);
        let far = gaussian_density([0.0, 0.0, 0.0], c, 0.2, 1.0, 9.0);
        assert!((at_center - 10.0).abs() < 1e-9);
        assert!(far < at_center);
        assert!(far >= 1.0);
    }

    #[test]
    fn oct_roundtrip() {
        for d in 1..=4u8 {
            let side = 1u32 << d;
            for x in (0..side).step_by(3) {
                for y in (0..side).step_by(2) {
                    for z in 0..side.min(4) {
                        assert_eq!(oct_coords(oct_bits([x, y, z], d), d), [x, y, z]);
                    }
                }
            }
        }
    }

    #[test]
    fn density_is_periodic() {
        let c = [0.0, 0.5, 0.5];
        let a = gaussian_density([0.95, 0.5, 0.5], c, 0.2, 1.0, 5.0);
        let b = gaussian_density([0.05, 0.5, 0.5], c, 0.2, 1.0, 5.0);
        assert!((a - b).abs() < 1e-9, "wraparound symmetric");
    }

    #[test]
    fn splitmix_deterministic_and_seed_sensitive() {
        let take = |seed: u64| {
            let mut r = SplitMix64::new(seed);
            (0..64).map(|_| r.next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(take(7), take(7), "same seed, same stream");
        assert_ne!(take(7), take(8), "different seed, different stream");
        // pup roundtrip resumes mid-stream.
        let mut r = SplitMix64::new(99);
        for _ in 0..10 {
            r.next_u64();
        }
        let mut copy = roundtrip(&mut r.clone());
        assert_eq!(copy.next_u64(), r.clone().next_u64());
    }

    #[test]
    fn splitmix_uniform_f64_in_range() {
        let mut r = SplitMix64::new(3);
        let mut sum = 0.0;
        let n = 100_000;
        for _ in 0..n {
            let u = r.next_f64();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn poisson_stream_deterministic() {
        let take = |seed: u64| {
            let mut p = PoissonArrivals::new(seed, 1_000.0);
            (0..1000).map(|_| p.next_arrival_ns()).collect::<Vec<_>>()
        };
        assert_eq!(take(11), take(11));
        assert_ne!(take(11), take(12));
        // Checkpoint mid-stream and resume: identical continuation.
        let mut p = PoissonArrivals::new(5, 500.0);
        for _ in 0..100 {
            p.next_arrival_ns();
        }
        let mut restored = roundtrip(&mut p.clone());
        for _ in 0..100 {
            assert_eq!(restored.next_arrival_ns(), p.next_arrival_ns());
        }
    }

    #[test]
    fn poisson_interarrivals_match_exponential() {
        let mean = 10_000.0;
        let mut p = PoissonArrivals::new(17, mean);
        let n = 200_000usize;
        let mut prev = 0u64;
        let mut sum = 0.0;
        let mut over_mean = 0usize;
        for _ in 0..n {
            let t = p.next_arrival_ns();
            assert!(t > prev, "arrivals strictly increase");
            let dt = (t - prev) as f64;
            sum += dt;
            if dt > mean {
                over_mean += 1;
            }
            prev = t;
        }
        let emp_mean = sum / n as f64;
        assert!(
            (emp_mean / mean - 1.0).abs() < 0.02,
            "empirical mean {emp_mean} vs {mean}"
        );
        // P(dt > mean) = e^-1 for an exponential.
        let frac = over_mean as f64 / n as f64;
        assert!(
            (frac - (-1.0f64).exp()).abs() < 0.01,
            "P(dt>mean) = {frac}, want {}",
            (-1.0f64).exp()
        );
    }

    #[test]
    fn zipf_deterministic() {
        let take = |seed: u64| {
            let z = ZipfSampler::new(1000, 1.1);
            let mut r = SplitMix64::new(seed);
            (0..2000).map(|_| z.sample(&mut r)).collect::<Vec<_>>()
        };
        assert_eq!(take(21), take(21));
        assert_ne!(take(21), take(22));
    }

    #[test]
    fn zipf_matches_analytic_distribution() {
        // Property: empirical rank frequencies track k^-s / H_n within
        // tolerance, across exponents on both sides of s = 1 (the log
        // branch of the integral).
        for &s in &[0.7, 1.0, 1.3] {
            let n = 50u64;
            let z = ZipfSampler::new(n, s);
            let mut r = SplitMix64::new(1234);
            let draws = 400_000usize;
            let mut counts = vec![0u64; n as usize + 1];
            for _ in 0..draws {
                let k = z.sample(&mut r);
                assert!((1..=n).contains(&k));
                counts[k as usize] += 1;
            }
            for k in [1u64, 2, 3, 5, 10, 25, 50] {
                let expect = z.prob(k);
                let got = counts[k as usize] as f64 / draws as f64;
                assert!(
                    (got - expect).abs() < 0.01 && (got / expect - 1.0).abs() < 0.08,
                    "s={s} rank {k}: empirical {got:.5} vs analytic {expect:.5}"
                );
            }
            // Heavier exponent ⇒ more mass on rank 1.
        }
        let light = {
            let z = ZipfSampler::new(100, 0.6);
            z.prob(1)
        };
        let heavy = {
            let z = ZipfSampler::new(100, 1.4);
            z.prob(1)
        };
        assert!(heavy > light * 2.0);
    }
}
