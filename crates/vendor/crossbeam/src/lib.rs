//! Offline vendored stand-in for `crossbeam`.
//!
//! Provides `crossbeam::channel::{unbounded, Sender, Receiver}` — the only
//! part of crossbeam this workspace uses — as a Mutex+Condvar MPMC queue.
//! Senders and receivers are cloneable and `Send + Sync`; `recv` blocks and
//! returns `Err(RecvError)` once every sender is dropped and the queue is
//! empty, matching crossbeam's disconnect semantics.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Inner<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T>(Arc<Inner<T>>);

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T>(Arc<Inner<T>>);

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Like upstream: Debug without requiring T: Debug.
    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Nothing arrived before the deadline.
        Timeout,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (Sender(Arc::clone(&inner)), Receiver(inner))
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.senders.fetch_add(1, Ordering::SeqCst);
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.0.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender gone: wake all blocked receivers so they can
                // observe the disconnect.
                let _guard = self.0.queue.lock().unwrap_or_else(|p| p.into_inner());
                self.0.ready.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Enqueue `value`; fails only when every receiver is dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.0.receivers.load(Ordering::SeqCst) == 0 {
                return Err(SendError(value));
            }
            let mut q = self.0.queue.lock().unwrap_or_else(|p| p.into_inner());
            q.push_back(value);
            drop(q);
            self.0.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.0.receivers.fetch_sub(1, Ordering::SeqCst);
        }
    }

    impl<T> Receiver<T> {
        /// Block until a value arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.0.queue.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.0.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                q = self.0.ready.wait(q).unwrap_or_else(|p| p.into_inner());
            }
        }

        /// Block until a value arrives, the timeout expires, or every
        /// sender is dropped.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut q = self.0.queue.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.0.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _res) = self
                    .0
                    .ready
                    .wait_timeout(q, deadline - now)
                    .unwrap_or_else(|p| p.into_inner());
                q = guard;
            }
        }

        /// Pop a value if one is immediately available.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.0.queue.lock().unwrap_or_else(|p| p.into_inner());
            if let Some(v) = q.pop_front() {
                return Ok(v);
            }
            if self.0.senders.load(Ordering::SeqCst) == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn values_arrive_in_order() {
            let (tx, rx) = unbounded();
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            for i in 0..100 {
                assert_eq!(rx.recv().unwrap(), i);
            }
        }

        #[test]
        fn recv_unblocks_on_disconnect() {
            let (tx, rx) = unbounded::<u8>();
            let h = std::thread::spawn(move || rx.recv());
            drop(tx);
            assert_eq!(h.join().unwrap(), Err(RecvError));
        }

        #[test]
        fn mpmc_across_threads() {
            let (tx, rx) = unbounded::<u64>();
            let producers: Vec<_> = (0..4)
                .map(|_| {
                    let tx = tx.clone();
                    std::thread::spawn(move || {
                        for i in 0..250u64 {
                            tx.send(i).unwrap();
                        }
                    })
                })
                .collect();
            drop(tx);
            let consumers: Vec<_> = (0..2)
                .map(|_| {
                    let rx = rx.clone();
                    std::thread::spawn(move || {
                        let mut n = 0u64;
                        while rx.recv().is_ok() {
                            n += 1;
                        }
                        n
                    })
                })
                .collect();
            drop(rx);
            for p in producers {
                p.join().unwrap();
            }
            let total: u64 = consumers.into_iter().map(|c| c.join().unwrap()).sum();
            assert_eq!(total, 1000);
        }

        #[test]
        fn timeout_and_try_recv() {
            let (tx, rx) = unbounded::<u8>();
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            tx.send(9).unwrap();
            assert_eq!(rx.try_recv(), Ok(9));
        }
    }
}
