//! Offline vendored stand-in for `proptest`.
//!
//! The container this repo builds in cannot reach crates.io, so this crate
//! implements the slice of the proptest 1.x API the workspace's property
//! tests use: the [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`]
//! macros, [`strategy::Strategy`] with `prop_map` and `boxed`,
//! [`arbitrary::any`], numeric range strategies, `".{a,b}"` string regex
//! strategies, tuple strategies, [`collection::vec`] /
//! [`collection::btree_map`], [`option::of`], and [`bool::ANY`].
//!
//! Differences from upstream, by design:
//! - **No shrinking.** A failing case panics immediately with the case
//!   index and the run's seed; re-run with `PROPTEST_SEED=<seed>` to
//!   reproduce it exactly.
//! - **Deterministic by default.** The seed is fixed unless
//!   `PROPTEST_SEED` is set, so CI runs are reproducible.
//! - String regexes support exactly the `".{a,b}"` form the workspace
//!   uses (any-char repetitions); anything else panics loudly.

pub mod test_runner {
    /// Configuration for one `proptest!` block.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` random cases (proptest's constructor).
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// A failed property, carrying the assertion message.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// Build a failure from a message.
        pub fn fail<S: Into<String>>(msg: S) -> Self {
            TestCaseError(msg.into())
        }
    }

    /// Deterministic per-case random source (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed a generator.
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Next 64 uniformly random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            // Rejection sampling keeps it unbiased.
            let zone = u64::MAX - (u64::MAX - n + 1) % n;
            loop {
                let v = self.next_u64();
                if v <= zone {
                    return v % n;
                }
            }
        }

        /// Uniform f64 in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Drives the cases of a single property test.
    pub struct TestRunner {
        config: ProptestConfig,
        name: &'static str,
        seed: u64,
    }

    impl TestRunner {
        /// Create a runner for the named test, honoring `PROPTEST_SEED`.
        pub fn new(config: ProptestConfig, name: &'static str) -> Self {
            let seed = std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|s| s.parse::<u64>().ok())
                .unwrap_or(0xC0FFEE_D15EA5E5);
            TestRunner { config, name, seed }
        }

        /// Run every case; panic with case index + seed on the first
        /// failure (no shrinking).
        pub fn run<F>(&mut self, f: &mut F)
        where
            F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
        {
            for case in 0..self.config.cases {
                // Per-case stream: decorrelate cases while keeping the
                // whole run a pure function of (seed, test name).
                let mut h: u64 = self.seed ^ (case as u64).wrapping_mul(0x2545F4914F6CDD1D);
                for b in self.name.bytes() {
                    h = (h ^ b as u64).wrapping_mul(0x100000001B3);
                }
                let mut rng = TestRng::new(h);
                if let Err(TestCaseError(msg)) = f(&mut rng) {
                    panic!(
                        "proptest '{}' failed at case {}/{} (PROPTEST_SEED={}): {}",
                        self.name, case, self.config.cases, self.seed, msg
                    );
                }
            }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Object-safe core used by [`BoxedStrategy`].
    trait DynStrategy<T> {
        fn dyn_generate(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased strategy (`Strategy::boxed`).
    pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.dyn_generate(rng)
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    let off = if span == 0 { rng.next_u64() } else { rng.below(span) };
                    (self.start as i128 + off as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    let off = if span == 0 { rng.next_u64() } else { rng.below(span) };
                    (lo as i128 + off as i128) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            (self.start as f64 + rng.unit_f64() * (self.end - self.start) as f64) as f32
        }
    }

    /// `".{a,b}"` string regex strategies: `a..=b` arbitrary characters.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let (lo, hi) = parse_dot_repetition(self).unwrap_or_else(|| {
                panic!(
                    "vendored proptest only supports \".{{a,b}}\" string regexes, got {self:?}"
                )
            });
            let len = lo + rng.below((hi - lo + 1) as u64) as usize;
            let mut s = String::with_capacity(len);
            for _ in 0..len {
                // Mostly printable ASCII, occasionally multi-byte chars so
                // UTF-8 handling gets exercised.
                let c = if rng.below(10) == 0 {
                    const WIDE: [char; 6] = ['é', 'ß', '∀', '→', 'ツ', '🦀'];
                    WIDE[rng.below(WIDE.len() as u64) as usize]
                } else {
                    (0x20u8 + rng.below(95) as u8) as char
                };
                s.push(c);
            }
            s
        }
    }

    fn parse_dot_repetition(pattern: &str) -> Option<(usize, usize)> {
        let body = pattern.strip_prefix(".{")?.strip_suffix('}')?;
        let (lo, hi) = body.split_once(',')?;
        let lo: usize = lo.trim().parse().ok()?;
        let hi: usize = hi.trim().parse().ok()?;
        (lo <= hi).then_some((lo, hi))
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+ ))+) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy (`any::<T>()`).
    pub trait Arbitrary {
        /// Draw one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        /// Finite floats over a wide dynamic range. NaN/Inf are excluded:
        /// this workspace only compares floats through serialized bytes or
        /// arithmetic, and finite values keep those checks meaningful.
        fn arbitrary(rng: &mut TestRng) -> f64 {
            let mantissa = rng.unit_f64() * 2.0 - 1.0;
            let exp = rng.below(61) as i32 - 30;
            mantissa * (2.0f64).powi(exp)
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            f64::arbitrary(rng) as f32
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> char {
            char::from_u32(rng.below(0xD800) as u32).unwrap_or('?')
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(pub(crate) PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Whole-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeMap;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive element-count bounds for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty collection size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `Vec` strategy with element strategy and size bounds (a fixed
    /// `usize`, `a..b`, or `a..=b`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// The strategy returned by [`btree_map`].
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n)
                .map(|_| (self.key.generate(rng), self.value.generate(rng)))
                .collect()
        }
    }

    /// `BTreeMap` strategy (duplicate keys collapse, as upstream).
    pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The strategy returned by [`of`].
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            // 1-in-4 None, matching upstream's default weighting.
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }

    /// `Option` strategy around an inner strategy.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }
}

pub mod bool {
    use crate::arbitrary::Any;
    use std::marker::PhantomData;

    /// Uniform `bool` strategy.
    pub const ANY: Any<bool> = Any(PhantomData);
}

pub mod prelude {
    pub use crate::arbitrary::{any, Any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs `cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body!($config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body!($crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ($config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let mut runner =
                $crate::test_runner::TestRunner::new($config, stringify!($name));
            runner.run(&mut |__proptest_rng: &mut $crate::test_runner::TestRng|
                -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                $(let $pat =
                    $crate::strategy::Strategy::generate(&($strat), __proptest_rng);)+
                $body
                ::std::result::Result::Ok(())
            });
        }
    )*};
}

/// Assert inside a `proptest!` body; failure reports the case and seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Equality assert inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `left == right`\n  left: {l:?}\n right: {r:?}"),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `left == right`\n  left: {l:?}\n right: {r:?}\n{}",
                    format!($($fmt)+),
                ),
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::collection::{btree_map, vec};
    use crate::prelude::*;
    use crate::strategy::BoxedStrategy;

    fn nested() -> BoxedStrategy<(u64, Vec<String>)> {
        (any::<u64>(), vec(".{0,5}", 0..4)).prop_map(|(n, v)| (n, v)).boxed()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges, tuples, vecs, maps, options, and bools all generate
        /// in-bounds values.
        #[test]
        fn strategies_generate_in_bounds(
            n in 3usize..9,
            x in -5i64..5,
            f in 0.25f64..2.0,
            s in ".{2,6}",
            v in vec(0u8..10, 1..5),
            m in btree_map(any::<u32>(), ".{0,3}", 0..4),
            o in crate::option::of((any::<u8>(), ".{0,2}")),
            b in crate::bool::ANY,
        ) {
            prop_assert!((3..9).contains(&n));
            prop_assert!((-5..5).contains(&x));
            prop_assert!((0.25..2.0).contains(&f));
            let chars = s.chars().count();
            prop_assert!((2..=6).contains(&chars), "len {} of {:?}", chars, s);
            prop_assert!(!v.is_empty() && v.len() < 5 && v.iter().all(|&e| e < 10));
            prop_assert!(m.len() < 4);
            if let Some((_, ref t)) = o {
                prop_assert!(t.chars().count() <= 2);
            }
            prop_assert_eq!(b || !b, true);
        }

        #[test]
        fn boxed_and_mapped_strategies_work(mut pair in nested()) {
            pair.1.push(String::new());
            prop_assert!(!pair.1.is_empty());
        }
    }

    #[test]
    fn runs_are_deterministic_for_fixed_seed() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strat = vec(any::<u64>(), 0..20);
        let a = strat.generate(&mut TestRng::new(42));
        let b = strat.generate(&mut TestRng::new(42));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "string regexes")]
    fn unsupported_regex_panics() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let _ = "[a-z]+".generate(&mut TestRng::new(1));
    }
}
