//! A deterministic fast hasher for the simulator's hot-path maps.
//!
//! `std::collections::HashMap` defaults to SipHash-1-3 with per-process
//! random keys: DoS-resistant, but ~10× slower than needed for the small
//! fixed-shape keys (`Ix`, `ObjId`, `(ArrayId, u32)`) the runtime hashes
//! millions of times per run — and randomly seeded, so even *iteration
//! order* differs between processes. This crate is the classic
//! FxHash/rustc-hash design: a single multiply-rotate round per word,
//! fixed constants, no per-process state. Every run of every binary
//! hashes — and therefore iterates — identically, which the record/replay
//! subsystem relies on.
//!
//! Not DoS-resistant; keys here are simulator-internal, never attacker
//! chosen.

use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit Fx multiply constant (π-derived, as in rustc-hash).
const K: u64 = 0x517cc1b727220a95;

/// The hasher: one `rotate ^ mix *` round per input word.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, i: u64) {
        self.hash = (self.hash.rotate_left(5) ^ i).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf) | ((rem.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }
    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }
    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }
    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }
    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add_to_hash(i as u64);
        self.add_to_hash((i >> 64) as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// Seed-free `BuildHasher` — identical across processes and platforms.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Drop-in `HashMap` with the Fx hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// Drop-in `HashSet` with the Fx hasher.
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_builders() {
        assert_eq!(hash_of(&(3u32, 7i64)), hash_of(&(3u32, 7i64)));
        assert_eq!(hash_of(&"hello"), hash_of(&"hello"));
    }

    #[test]
    fn fixed_values_guard_against_algorithm_drift() {
        // Changing the algorithm silently would re-bucket every map; fail
        // loudly instead.
        assert_eq!(hash_of(&0u64), 0);
        assert_eq!(hash_of(&1u64), K);
        assert_ne!(hash_of(&2u64), hash_of(&3u64));
    }

    #[test]
    fn spreads_small_integers() {
        let mut buckets = [0u32; 16];
        for i in 0..1600i64 {
            buckets[(hash_of(&i) % 16) as usize] += 1;
        }
        for b in buckets {
            assert!(b > 40, "badly skewed: {buckets:?}");
        }
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<&str, i32> = FxHashMap::default();
        m.insert("a", 1);
        assert_eq!(m["a"], 1);
        let mut s: FxHashSet<u64> = FxHashSet::default();
        s.insert(9);
        assert!(s.contains(&9));
    }

    #[test]
    fn partial_tail_bytes_distinguished() {
        // Same prefix, different tail lengths must not collide trivially.
        let a = {
            let mut h = FxHasher::default();
            h.write(b"abcdefgh_x");
            h.finish()
        };
        let b = {
            let mut h = FxHasher::default();
            h.write(b"abcdefgh_xy");
            h.finish()
        };
        assert_ne!(a, b);
    }
}
