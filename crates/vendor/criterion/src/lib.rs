//! Offline vendored stand-in for `criterion`.
//!
//! Implements the slice of the criterion 0.5 API the workspace's benches
//! use — `Criterion`, `Bencher::iter`, benchmark groups with throughput and
//! sample-size knobs, `BenchmarkId`, and the `criterion_group!` /
//! `criterion_main!` macros — on top of plain `std::time::Instant` timing.
//! No statistics, plots, or baselines: each benchmark is warmed up once and
//! timed over `sample_size` batches, reporting the per-iteration mean.
//!
//! When the binary is invoked by `cargo test` (which passes `--test` to
//! `harness = false` bench targets), every benchmark runs exactly one
//! iteration so the suite stays fast while still exercising the code.

use std::fmt;
use std::time::{Duration, Instant};

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Build an id from the parameter's `Display` form.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId(parameter.to_string())
    }

    /// Build an id from a function name plus a parameter.
    pub fn new<S: Into<String>, P: fmt::Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId(format!("{}/{}", function_name.into(), parameter))
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Throughput annotation for a benchmark group (recorded, shown in output).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Passed to benchmark closures; `iter` runs and times the hot loop.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, running it `iters` times back to back.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Re-export so bench code written against criterion's `black_box` works.
pub use std::hint::black_box;

/// The benchmark driver.
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
    default_sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            test_mode: false,
            filter: None,
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Construct from the process's command line, the way
    /// `criterion_main!` does. Recognises `--test` (one iteration per
    /// benchmark, as passed by `cargo test` to `harness = false` targets)
    /// and treats the first free argument as a substring filter.
    pub fn from_args() -> Self {
        let mut c = Criterion::default();
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => c.test_mode = true,
                "--bench" => {}
                s if s.starts_with('-') => {}
                s => {
                    if c.filter.is_none() {
                        c.filter = Some(s.to_string());
                    }
                }
            }
        }
        c
    }

    fn should_run(&self, name: &str) -> bool {
        match &self.filter {
            Some(f) => name.contains(f.as_str()),
            None => true,
        }
    }

    fn run_one(&mut self, name: &str, sample_size: u64, f: &mut dyn FnMut(&mut Bencher)) {
        if !self.should_run(name) {
            return;
        }
        let samples = if self.test_mode { 1 } else { sample_size.max(1) };
        let iters_per_sample: u64 = 1;
        // Warm-up pass (skipped in test mode to keep `cargo test` fast).
        if !self.test_mode {
            let mut warm = Bencher {
                iters: iters_per_sample,
                elapsed: Duration::ZERO,
            };
            f(&mut warm);
        }
        let mut total = Duration::ZERO;
        let mut total_iters = 0u64;
        for _ in 0..samples {
            let mut b = Bencher {
                iters: iters_per_sample,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            total += b.elapsed;
            total_iters += b.iters;
        }
        let per_iter = total.as_secs_f64() / total_iters.max(1) as f64;
        if self.test_mode {
            println!("bench {name}: ok (1 iter, {:.3} ms)", per_iter * 1e3);
        } else {
            println!(
                "bench {name}: {:.3} ms/iter over {total_iters} iters",
                per_iter * 1e3
            );
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<N: fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        name: N,
        mut f: F,
    ) -> &mut Self {
        let sample_size = self.default_sample_size;
        self.run_one(&name.to_string(), sample_size, &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group<N: Into<String>>(&mut self, name: N) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }

    /// Print the closing line (criterion's summary hook; a no-op here).
    pub fn final_summary(&mut self) {}
}

/// A named group of benchmarks sharing throughput/sample-size settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: u64,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Record the work done per iteration (annotates output only).
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Set the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Run a benchmark inside the group.
    pub fn bench_function<N: fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: N,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        let n = self.sample_size;
        self.criterion.run_one(&full, n, &mut f);
        self
    }

    /// Run a parameterised benchmark inside the group.
    pub fn bench_with_input<I: ?Sized, N: fmt::Display, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: N,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        let n = self.sample_size;
        self.criterion.run_one(&full, n, &mut |b| f(b, input));
        self
    }

    /// Close the group.
    pub fn finish(self) {
        let _ = self.throughput;
    }
}

/// Bundle benchmark functions into a group runner, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Generate `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::from_args();
            $( $group(&mut c); )+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion {
            test_mode: true,
            ..Criterion::default()
        };
        let mut ran = 0u32;
        c.bench_function("smoke", |b| b.iter(|| ran += 1));
        assert!(ran >= 1);
    }

    #[test]
    fn group_runs_with_input_and_filters() {
        let mut c = Criterion {
            test_mode: true,
            filter: Some("keep".into()),
            ..Criterion::default()
        };
        let mut kept = 0u32;
        let mut skipped = 0u32;
        {
            let mut g = c.benchmark_group("g");
            g.throughput(Throughput::Bytes(64));
            g.sample_size(10);
            g.bench_with_input(BenchmarkId::from_parameter("keep"), &3u32, |b, &x| {
                b.iter(|| kept += x)
            });
            g.bench_function("other", |b| b.iter(|| skipped += 1));
            g.finish();
        }
        assert!(kept >= 3);
        assert_eq!(skipped, 0);
    }
}
