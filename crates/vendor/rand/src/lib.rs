//! Offline vendored stand-in for the `rand` crate.
//!
//! The container this repo builds in has no access to crates.io, so the
//! workspace vendors the small slice of the rand 0.8 API it actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! extension methods `gen`, `gen_range`, and `gen_bool`.
//!
//! The generator is xoshiro256** seeded through SplitMix64 — deterministic,
//! fast, and statistically solid for simulation workloads. It is *not* the
//! same stream as upstream `StdRng` (ChaCha12), so absolute simulation
//! numbers differ from runs linked against crates.io rand; everything in
//! this repo only relies on determinism for a fixed seed, which holds.

use std::ops::{Range, RangeInclusive};

/// A random number generator: the minimal core the [`Rng`] extension
/// methods build on.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (subset of rand's `SeedableRng`).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (rand's `seed_from_u64`).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly over their whole domain via
/// `Rng::gen`.
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for i32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i32
    }
}

impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in [0, 1) with 53 bits of precision (matches rand's
    /// `Standard` distribution for f64).
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Range types `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Lemire-style unbiased bounded integer in [0, n) for n > 0.
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    // Rejection sampling over the top of the range keeps it unbiased.
    let zone = u64::MAX - (u64::MAX - n + 1) % n;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % n;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = if span == 0 {
                    // Full-width u64 range: every value is valid.
                    rng.next_u64()
                } else {
                    bounded_u64(rng, span)
                };
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                let off = if span == 0 { rng.next_u64() } else { bounded_u64(rng, span) };
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        let u = f64::sample(rng);
        lo + u * (hi - lo)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f32::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// The user-facing extension trait (subset of rand's `Rng`).
pub trait Rng: RngCore {
    /// Sample a value over the type's whole domain.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from `range` (half-open or inclusive).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of [0,1]");
        f64::sample(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Named generators (subset of rand's `rngs` module).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = r.gen_range(-0.5f64..=0.5);
            assert!((-0.5..=0.5).contains(&f));
            let u = r.gen_range(0..u64::MAX / 16);
            assert!(u < u64::MAX / 16);
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut r = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits={hits}");
        assert!((0..1000).all(|_| !r.gen_bool(0.0)));
        assert!((0..1000).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn f64_standard_is_unit_interval() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v: f64 = r.gen::<f64>();
            assert!((0.0..1.0).contains(&v));
        }
    }
}
