//! Offline vendored stand-in for `parking_lot`.
//!
//! Thin wrappers over `std::sync` primitives exposing parking_lot's
//! ergonomics: `lock()`/`read()`/`write()` return guards directly instead of
//! `Result`s. Poisoning is handled by taking the inner guard anyway — the
//! same observable behaviour as parking_lot, which has no poisoning.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock (parking_lot-style API over `std::sync::Mutex`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap `value` in a mutex.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

/// A readers-writer lock (parking_lot-style API over `std::sync::RwLock`).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap `value` in an rwlock.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|p| p.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|p| p.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2, 3]);
        assert_eq!(l.read().len(), 3);
        l.write().push(4);
        assert_eq!(*l.read(), vec![1, 2, 3, 4]);
    }
}
