//! # charm-tram — Topological Routing and Aggregation Module (§III-F)
//!
//! Fine-grained messages pay a per-message cost (software overhead + network
//! α) that is independent of size; applications that send huge numbers of
//! tiny *data items* (PDES events, particle exchanges, sorting splatters)
//! can be dominated by it. TRAM coalesces items:
//!
//! * PEs are arranged in a **virtual N-dimensional grid**; the *peers* of a
//!   PE are all PEs reachable by changing one coordinate.
//! * An item for a non-peer destination is **routed** through intermediate
//!   peers along a minimal dimension-order path — so each PE aggregates into
//!   at most `Σ(dims−1)` buffers instead of P−1, keeping the buffer
//!   footprint cache-friendly, while items with different destinations but
//!   common sub-paths share messages.
//! * A buffer is **flushed** (sent as one combined message) when it reaches
//!   the configured threshold, when the application calls
//!   [`Tram::flush_all`], or on an optional idle-aware periodic timer.
//!
//! The per-PE aggregation points are implemented as a group-like chare array
//! (one [`TramAgent`] per PE, pinned), exactly as a Charm++ library would.
//!
//! Trade-off reproduced from Fig. 15b: at low message volume aggregation
//! *increases* average latency (items wait in buffers), so direct sends win;
//! at high volume TRAM wins decisively.

use charm_core::{ArrayId, ArrayProxy, Chare, Ctx, Ix, Runtime, SysEvent};
use charm_machine::{SimTime, Torus};
use charm_pup::{Pup, Puper};

/// Configuration for a TRAM instance.
#[derive(Debug, Clone)]
pub struct TramConfig {
    /// Dimensions of the virtual grid (e.g. 2 → √P × √P).
    pub ndims: usize,
    /// Items buffered per peer before an automatic flush.
    pub flush_threshold: usize,
    /// Optional idle-aware periodic flush interval; `None` = flush only on
    /// threshold or explicit `flush_all`.
    pub flush_interval: Option<SimTime>,
}

impl Default for TramConfig {
    fn default() -> Self {
        TramConfig {
            ndims: 2,
            flush_threshold: 64,
            flush_interval: Some(SimTime::from_micros(500)),
        }
    }
}

/// Messages handled by a [`TramAgent`].
#[derive(Default)]
pub enum TramMsg<M> {
    /// A locally submitted item (from a chare on this agent's PE).
    Submit {
        /// Final destination PE of the item.
        dst_pe: u64,
        /// Final destination chare.
        ix: Ix,
        /// The payload.
        item: M,
    },
    /// A combined message of routed items from a peer.
    Batch(Vec<RoutedItemTuple<M>>),
    /// Flush all buffers now.
    #[default]
    FlushAll,
    /// Idle-aware periodic flush tick.
    FlushTick,
}

/// Public alias so `TramMsg` can be named in signatures.
pub type RoutedItemTuple<M> = (u64, Ix, M);

impl<M: Pup + Default> Pup for TramMsg<M> {
    fn pup(&mut self, p: &mut Puper) {
        let mut tag: u8 = match self {
            TramMsg::Submit { .. } => 0,
            TramMsg::Batch(_) => 1,
            TramMsg::FlushAll => 2,
            TramMsg::FlushTick => 3,
        };
        p.p(&mut tag);
        if p.is_unpacking() {
            *self = match tag {
                0 => TramMsg::Submit {
                    dst_pe: 0,
                    ix: Ix::default(),
                    item: M::default(),
                },
                1 => TramMsg::Batch(Vec::new()),
                2 => TramMsg::FlushAll,
                3 => TramMsg::FlushTick,
                t => panic!("invalid TramMsg tag {t}"),
            };
        }
        match self {
            TramMsg::Submit { dst_pe, ix, item } => {
                p.p(dst_pe);
                p.p(ix);
                p.p(item);
            }
            TramMsg::Batch(items) => p.p(items),
            TramMsg::FlushAll | TramMsg::FlushTick => {}
        }
    }
}


/// The per-PE aggregation agent. One element per PE, never migrated.
pub struct TramAgent<C: Chare>
where
    C::Msg: Default,
{
    my_pe: u64,
    dims: Vec<u64>,
    threshold: u64,
    flush_interval_ns: u64,
    target: ArrayProxy<C>,
    self_array: ArrayProxy<TramAgent<C>>,
    /// Buffers keyed by next-hop PE.
    buffers: std::collections::BTreeMap<u64, Vec<RoutedItemTuple<C::Msg>>>,
    /// Items buffered since the last tick (idle detection for the timer).
    activity: u64,
    tick_armed: bool,
    /// Lifetime statistics.
    items_routed: u64,
    batches_sent: u64,
}

impl<C: Chare> Default for TramAgent<C>
where
    C::Msg: Default,
{
    fn default() -> Self {
        TramAgent {
            my_pe: 0,
            dims: Vec::new(),
            threshold: 64,
            flush_interval_ns: 0,
            target: ArrayProxy::default(),
            self_array: ArrayProxy::default(),
            buffers: std::collections::BTreeMap::new(),
            activity: 0,
            tick_armed: false,
            items_routed: 0,
            batches_sent: 0,
        }
    }
}

impl<C: Chare> Pup for TramAgent<C>
where
    C::Msg: Default,
{
    fn pup(&mut self, p: &mut Puper) {
        p.p(&mut self.my_pe);
        p.p(&mut self.dims);
        p.p(&mut self.threshold);
        p.p(&mut self.flush_interval_ns);
        p.p(&mut self.target);
        p.p(&mut self.self_array);
        // Buffers are serialized so even a checkpoint taken mid-phase is
        // lossless.
        let mut n = self.buffers.len() as u64;
        p.p(&mut n);
        if p.is_unpacking() {
            self.buffers.clear();
            for _ in 0..n {
                let mut k = 0u64;
                let mut v: Vec<RoutedItemTuple<C::Msg>> = Vec::new();
                p.p(&mut k);
                p.p(&mut v);
                self.buffers.insert(k, v);
            }
        } else {
            let keys: Vec<u64> = self.buffers.keys().copied().collect();
            for k in keys {
                let mut kk = k;
                p.p(&mut kk);
                p.p(self.buffers.get_mut(&k).expect("key listed"));
            }
        }
        p.p(&mut self.activity);
        p.p(&mut self.tick_armed);
        p.p(&mut self.items_routed);
        p.p(&mut self.batches_sent);
    }
}

impl<C: Chare> TramAgent<C>
where
    C::Msg: Default,
{
    fn torus(&self) -> Torus {
        Torus::new(self.dims.iter().map(|&d| d as usize).collect())
    }

    /// Route one item a step: deliver locally or buffer toward the next hop.
    fn route(&mut self, dst_pe: u64, ix: Ix, item: C::Msg, ctx: &mut Ctx<'_>) {
        self.items_routed += 1;
        if dst_pe == self.my_pe {
            ctx.send(self.target, ix, item);
            return;
        }
        let torus = self.torus();
        let next = torus
            .route_next(self.my_pe as usize, dst_pe as usize)
            .expect("dst != self") as u64;
        self.buffers.entry(next).or_default().push((dst_pe, ix, item));
        self.activity += 1;
        let len = self.buffers[&next].len() as u64;
        if len >= self.threshold {
            self.flush_peer(next, ctx);
        } else if self.flush_interval_ns > 0 && !self.tick_armed {
            self.tick_armed = true;
            ctx.send_after(
                SimTime::from_nanos(self.flush_interval_ns),
                self.self_array,
                Ix::i1(self.my_pe as i64),
                TramMsg::FlushTick,
            );
        }
    }

    fn flush_peer(&mut self, peer: u64, ctx: &mut Ctx<'_>) {
        if let Some(items) = self.buffers.remove(&peer) {
            if items.is_empty() {
                return;
            }
            self.batches_sent += 1;
            ctx.send(
                self.self_array,
                Ix::i1(peer as i64),
                TramMsg::Batch(items),
            );
        }
    }

    fn flush_everything(&mut self, ctx: &mut Ctx<'_>) {
        let peers: Vec<u64> = self.buffers.keys().copied().collect();
        for peer in peers {
            self.flush_peer(peer, ctx);
        }
    }
}

impl<C: Chare> Chare for TramAgent<C>
where
    C::Msg: Default,
{
    type Msg = TramMsg<C::Msg>;

    fn on_message(&mut self, msg: TramMsg<C::Msg>, ctx: &mut Ctx<'_>) {
        match msg {
            TramMsg::Submit { dst_pe, ix, item } => self.route(dst_pe, ix, item, ctx),
            TramMsg::Batch(items) => {
                for (dst_pe, ix, item) in items {
                    self.route(dst_pe, ix, item, ctx);
                }
            }
            TramMsg::FlushAll => self.flush_everything(ctx),
            TramMsg::FlushTick => {
                self.tick_armed = false;
                if self.activity > 0 {
                    self.activity = 0;
                    self.flush_everything(ctx);
                    // Re-arm only if traffic continues; `route` re-arms on
                    // the next buffered item, so an idle agent goes quiet
                    // (and quiescence detection still works).
                }
            }
        }
    }

    fn on_event(&mut self, _event: SysEvent, _ctx: &mut Ctx<'_>) {}
}

/// Handle to an attached TRAM instance — `Copy`, pup-able, safe to keep in
/// chare state.
pub struct Tram<C: Chare>
where
    C::Msg: Default,
{
    agents: ArrayProxy<TramAgent<C>>,
}

impl<C: Chare> Clone for Tram<C>
where
    C::Msg: Default,
{
    fn clone(&self) -> Self {
        *self
    }
}
impl<C: Chare> Copy for Tram<C> where C::Msg: Default {}

impl<C: Chare> Default for Tram<C>
where
    C::Msg: Default,
{
    fn default() -> Self {
        Tram {
            agents: ArrayProxy::default(),
        }
    }
}

impl<C: Chare> Pup for Tram<C>
where
    C::Msg: Default,
{
    fn pup(&mut self, p: &mut Puper) {
        p.p(&mut self.agents);
    }
}

impl<C: Chare> Tram<C>
where
    C::Msg: Default,
{
    /// Create the per-PE agent group and return the handle. `name` must be
    /// unique among the runtime's arrays.
    pub fn attach(
        rt: &mut Runtime,
        name: &str,
        target: ArrayProxy<C>,
        config: TramConfig,
    ) -> Tram<C> {
        let agents = rt.create_array::<TramAgent<C>>(name);
        let n = rt.num_pes();
        // Exact factorization: every grid slot must be a live PE, or
        // dimension-order routing would forward through phantom ranks.
        let dims: Vec<u64> = Torus::factored(n, config.ndims)
            .dims()
            .iter()
            .map(|&d| d as u64)
            .collect();
        for pe in 0..n {
            rt.insert(
                agents,
                Ix::i1(pe as i64),
                TramAgent {
                    my_pe: pe as u64,
                    dims: dims.clone(),
                    threshold: config.flush_threshold.max(1) as u64,
                    flush_interval_ns: config
                        .flush_interval
                        .map(|t| t.as_nanos())
                        .unwrap_or(0),
                    target,
                    self_array: agents,
                    ..TramAgent::default()
                },
                Some(pe),
            );
        }
        Tram { agents }
    }

    /// Submit one data item from inside an entry method: it will reach
    /// element `ix` of the target array on PE `dst_pe`, possibly routed and
    /// aggregated through intermediate peers.
    ///
    /// Each call is one (cheap, local) message to the aggregation agent;
    /// when a single entry method emits many items, prefer
    /// [`Tram::send_via`] with a [`TramBuf`], which batches the local
    /// hand-off as well.
    pub fn send(&self, ctx: &mut Ctx<'_>, dst_pe: usize, ix: Ix, item: C::Msg) {
        ctx.send(
            self.agents,
            Ix::i1(ctx.my_pe() as i64),
            TramMsg::Submit {
                dst_pe: dst_pe as u64,
                ix,
                item,
            },
        );
    }

    /// Buffer an item in the caller's [`TramBuf`]; the whole buffer goes to
    /// the local agent as one message when it reaches its local threshold.
    /// Call [`Tram::flush_via`] before the entry method returns (or at a
    /// phase boundary) to push out the remainder.
    pub fn send_via(
        &self,
        ctx: &mut Ctx<'_>,
        buf: &mut TramBuf<C>,
        dst_pe: usize,
        ix: Ix,
        item: C::Msg,
    ) {
        buf.items.push((dst_pe as u64, ix, item));
        if buf.items.len() as u64 >= buf.local_threshold {
            self.flush_via(ctx, buf);
        }
    }

    /// Hand any buffered items to the local agent as a single message.
    pub fn flush_via(&self, ctx: &mut Ctx<'_>, buf: &mut TramBuf<C>) {
        if buf.items.is_empty() {
            return;
        }
        let items = std::mem::take(&mut buf.items);
        ctx.send(
            self.agents,
            Ix::i1(ctx.my_pe() as i64),
            TramMsg::Batch(items),
        );
    }

    /// Flush every buffer on every PE (e.g. at a PDES window boundary).
    pub fn flush_all(&self, ctx: &mut Ctx<'_>) {
        ctx.broadcast_flush(self.agents);
    }

    /// Flush from the host side.
    pub fn flush_all_from_host(&self, rt: &mut Runtime) {
        let n = rt.num_pes();
        for pe in 0..n {
            rt.send(self.agents, Ix::i1(pe as i64), TramMsg::FlushAll);
        }
    }

    /// The underlying agent array id (for diagnostics).
    pub fn agents_id(&self) -> ArrayId {
        self.agents.id()
    }

    /// Total items currently parked in agent buffers (host-side diagnostic).
    pub fn buffered_items(&self, rt: &Runtime) -> usize {
        let mut total = 0;
        for pe in 0..rt.num_pes() {
            total += rt
                .inspect(self.agents, &Ix::i1(pe as i64), |a: &TramAgent<C>| {
                    a.buffers.values().map(|v| v.len()).sum::<usize>()
                })
                .unwrap_or(0);
        }
        total
    }

    /// Are any agent flush timers armed? (host-side diagnostic)
    pub fn ticks_armed(&self, rt: &Runtime) -> usize {
        (0..rt.num_pes())
            .filter(|&pe| {
                rt.inspect(self.agents, &Ix::i1(pe as i64), |a: &TramAgent<C>| a.tick_armed)
                    .unwrap_or(false)
            })
            .count()
    }
}

/// A caller-side staging buffer for [`Tram::send_via`]: lives in the
/// sending chare's state (it is `Pup`, so it migrates/checkpoints with its
/// owner) and coalesces the local hand-off to the aggregation agent.
pub struct TramBuf<C: Chare>
where
    C::Msg: Default,
{
    items: Vec<RoutedItemTuple<C::Msg>>,
    /// Items staged before the buffer is handed to the local agent.
    pub local_threshold: u64,
}

impl<C: Chare> Default for TramBuf<C>
where
    C::Msg: Default,
{
    fn default() -> Self {
        TramBuf {
            items: Vec::new(),
            local_threshold: 64,
        }
    }
}

impl<C: Chare> TramBuf<C>
where
    C::Msg: Default,
{
    /// A buffer with an explicit local threshold.
    pub fn with_threshold(local_threshold: u64) -> Self {
        TramBuf {
            items: Vec::new(),
            local_threshold: local_threshold.max(1),
        }
    }

    /// Items currently staged.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when nothing is staged.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

impl<C: Chare> Pup for TramBuf<C>
where
    C::Msg: Default,
{
    fn pup(&mut self, p: &mut Puper) {
        p.p(&mut self.items);
        p.p(&mut self.local_threshold);
    }
}

/// Extension trait so `flush_all` can broadcast without requiring
/// `TramMsg<C::Msg>: Clone` (broadcast requires `Clone`; `FlushAll` is
/// cloneable by construction, so we send per-element instead).
trait CtxFlushExt {
    fn broadcast_flush<C: Chare>(&mut self, agents: ArrayProxy<TramAgent<C>>)
    where
        C::Msg: Default;
}

impl CtxFlushExt for Ctx<'_> {
    fn broadcast_flush<C: Chare>(&mut self, agents: ArrayProxy<TramAgent<C>>)
    where
        C::Msg: Default,
    {
        for pe in 0..self.num_pes() {
            self.send(agents, Ix::i1(pe as i64), TramMsg::FlushAll);
        }
    }
}
