//! TRAM correctness and performance-shape tests: exact-once delivery,
//! aggregation economics (Fig. 15b's crossover), and determinism.

use charm_core::{Callback, Chare, Ctx, Ix, RedOp, RedValue, Runtime, SimTime, SysEvent};
use charm_pup::{Pup, Puper};
use charm_tram::{Tram, TramBuf, TramConfig};

const SINKS_PER_PE: u64 = 4;
const PROBE: u64 = u64::MAX;

/// A sink that counts and checksums received items; on the PROBE value it
/// instead contributes its totals to the verifier reduction.
#[derive(Default)]
struct Sink {
    received: u64,
    checksum: u64,
}

impl Pup for Sink {
    fn pup(&mut self, p: &mut Puper) {
        p.p(&mut self.received);
        p.p(&mut self.checksum);
    }
}

#[derive(Default, Clone)]
struct Item(u64);
impl Pup for Item {
    fn pup(&mut self, p: &mut Puper) {
        p.p(&mut self.0);
    }
}

impl Chare for Sink {
    type Msg = Item;
    fn on_message(&mut self, Item(v): Item, ctx: &mut Ctx<'_>) {
        if v == PROBE {
            let me = charm_core::ArrayProxy::<Sink>::from_id(ctx.my_id().array);
            ctx.contribute(
                me,
                999,
                RedValue::VecI64(vec![
                    self.received as i64,
                    (self.checksum % 1_000_000_007) as i64,
                ]),
                RedOp::Sum,
                Callback::ToChare {
                    array: charm_core::ArrayId(3),
                    ix: Ix::i1(0),
                },
            );
            return;
        }
        self.received += 1;
        self.checksum = self.checksum.wrapping_add(v.wrapping_mul(0x9E3779B9));
    }
}

/// A source chare that sprays items through TRAM (or directly).
#[derive(Default)]
struct Source {
    tram: Option<Tram<Sink>>,
    buf: TramBuf<Sink>,
    num_pes: u64,
    items: u64,
}

impl Pup for Source {
    fn pup(&mut self, p: &mut Puper) {
        p.p(&mut self.tram);
        p.p(&mut self.buf);
        p.p(&mut self.num_pes);
        p.p(&mut self.items);
    }
}

#[derive(Default, Clone)]
struct Spray;
impl Pup for Spray {
    fn pup(&mut self, _p: &mut Puper) {}
}

impl Chare for Source {
    type Msg = Spray;
    fn on_message(&mut self, _m: Spray, ctx: &mut Ctx<'_>) {
        let sinks = charm_core::ArrayProxy::<Sink>::from_id(charm_core::ArrayId(0));
        for k in 0..self.items {
            let h = k
                .wrapping_mul(0x9E3779B97F4A7C15)
                .wrapping_add((ctx.my_pe() as u64) << 32);
            let dst_pe = (h >> 17) % self.num_pes;
            let sink_ix = (dst_pe * SINKS_PER_PE + (h % SINKS_PER_PE)) as i64;
            match self.tram {
                Some(t) => t.send_via(ctx, &mut self.buf, dst_pe as usize, Ix::i1(sink_ix), Item(k)),
                None => ctx.send(sinks, Ix::i1(sink_ix), Item(k)),
            }
        }
        if let Some(t) = self.tram {
            t.flush_via(ctx, &mut self.buf);
        }
    }
}

/// Receives the verification reduction and journals it.
#[derive(Default)]
struct Verifier;
impl Pup for Verifier {
    fn pup(&mut self, _p: &mut Puper) {}
}
impl Chare for Verifier {
    type Msg = u8;
    fn on_message(&mut self, _m: u8, _ctx: &mut Ctx<'_>) {}
    fn on_event(&mut self, ev: SysEvent, ctx: &mut Ctx<'_>) {
        if let SysEvent::Reduction { value, .. } = ev {
            let v = value.as_vec_i64();
            ctx.log_metric("received", v[0] as f64);
            ctx.log_metric("checksum", v[1] as f64);
        }
    }
}

/// Broadcasts the probe to all sinks (arrays: 0=sinks, 1=sources,
/// 2=tram agents if present, 3=verifier, 4=probe).
#[derive(Default)]
struct Probe;
impl Pup for Probe {
    fn pup(&mut self, _p: &mut Puper) {}
}
impl Chare for Probe {
    type Msg = u8;
    fn on_message(&mut self, _m: u8, ctx: &mut Ctx<'_>) {
        let sinks = charm_core::ArrayProxy::<Sink>::from_id(charm_core::ArrayId(0));
        ctx.broadcast(sinks, Item(PROBE));
    }
}

struct Outcome {
    time_s: f64,
    messages: u64,
    received: u64,
    checksum: i64,
}

fn run_verified(num_pes: usize, items_per_pe: u64, tram_cfg: Option<TramConfig>) -> Outcome {
    let mut rt = Runtime::homogeneous(num_pes);
    let sinks = rt.create_array::<Sink>("sinks");
    let sources = rt.create_array::<Source>("sources");
    for pe in 0..num_pes {
        for s in 0..SINKS_PER_PE {
            rt.insert(
                sinks,
                Ix::i1((pe as u64 * SINKS_PER_PE + s) as i64),
                Sink::default(),
                Some(pe),
            );
        }
    }
    let tram = tram_cfg.map(|cfg| Tram::attach(&mut rt, "tram", sinks, cfg));
    // With no TRAM attached, array ids shift; create a placeholder so the
    // verifier/probe ids are stable at 3 and 4.
    if tram.is_none() {
        let _placeholder = rt.create_array::<Probe>("placeholder");
    }
    for pe in 0..num_pes {
        rt.insert(
            sources,
            Ix::i1(pe as i64),
            Source {
                tram,
                buf: TramBuf::with_threshold(64),
                num_pes: num_pes as u64,
                items: items_per_pe,
            },
            Some(pe),
        );
    }
    for pe in 0..num_pes {
        rt.send(sources, Ix::i1(pe as i64), Spray);
    }
    if let Some(t) = &tram {
        t.flush_all_from_host(&mut rt);
    }
    let s1 = rt.run();
    let spray_time = s1.end_time.as_secs_f64();

    // Phase 2: verification sweep (its cost is not part of `time_s`).
    let verif = rt.create_array::<Verifier>("verifier");
    assert_eq!(verif.id().0, 3, "verifier array id must be 3");
    rt.insert(verif, Ix::i1(0), Verifier, Some(0));
    let probe = rt.create_array::<Probe>("probe");
    rt.insert(probe, Ix::i1(0), Probe, Some(0));
    rt.send(probe, Ix::i1(0), 0u8);
    rt.run();

    Outcome {
        time_s: spray_time,
        messages: s1.messages,
        received: rt.metric("received").last().expect("verified").1 as u64,
        checksum: rt.metric("checksum").last().expect("verified").1 as i64,
    }
}

#[test]
fn tram_delivers_every_item_exactly_once() {
    let n_pes = 16;
    let items = 200;
    let direct = run_verified(n_pes, items, None);
    let trammed = run_verified(
        n_pes,
        items,
        Some(TramConfig {
            ndims: 2,
            flush_threshold: 32,
            flush_interval: Some(SimTime::from_micros(200)),
        }),
    );
    let expected = n_pes as u64 * items;
    assert_eq!(direct.received, expected);
    assert_eq!(trammed.received, expected, "TRAM must not lose or dup items");
    assert_eq!(
        direct.checksum, trammed.checksum,
        "same payloads must arrive either way"
    );
}

#[test]
fn three_dim_grid_also_delivers_all() {
    let n_pes = 27;
    let items = 150;
    let trammed = run_verified(
        n_pes,
        items,
        Some(TramConfig {
            ndims: 3,
            flush_threshold: 16,
            flush_interval: Some(SimTime::from_micros(100)),
        }),
    );
    assert_eq!(trammed.received, n_pes as u64 * items);
}

#[test]
fn tram_wins_at_high_volume() {
    let n_pes = 16;
    let items = 2000;
    let direct = run_verified(n_pes, items, None);
    let trammed = run_verified(
        n_pes,
        items,
        Some(TramConfig {
            ndims: 2,
            flush_threshold: 64,
            flush_interval: Some(SimTime::from_micros(25)),
        }),
    );
    assert!(
        trammed.time_s < direct.time_s,
        "TRAM should win at high volume: direct={:.6}s tram={:.6}s (msgs {} vs {})",
        direct.time_s,
        trammed.time_s,
        direct.messages,
        trammed.messages
    );
}

#[test]
fn direct_sends_win_at_low_volume() {
    let n_pes = 16;
    let items = 4; // far below the threshold: items wait for the timer
    let direct = run_verified(n_pes, items, None);
    let trammed = run_verified(
        n_pes,
        items,
        Some(TramConfig {
            ndims: 2,
            flush_threshold: 1024,
            flush_interval: Some(SimTime::from_millis(2)),
        }),
    );
    assert!(
        direct.time_s < trammed.time_s,
        "aggregation must cost latency at low volume: direct={:.6}s tram={:.6}s",
        direct.time_s,
        trammed.time_s
    );
}

#[test]
fn tram_runs_are_deterministic() {
    let cfg = || TramConfig {
        ndims: 2,
        flush_threshold: 16,
        flush_interval: Some(SimTime::from_micros(100)),
    };
    let a = run_verified(9, 100, Some(cfg()));
    let b = run_verified(9, 100, Some(cfg()));
    assert_eq!(a.time_s, b.time_s);
    assert_eq!(a.messages, b.messages);
    assert_eq!(a.checksum, b.checksum);
}
