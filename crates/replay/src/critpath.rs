//! Offline critical-path extraction from a recorded [`ReplayLog`].
//!
//! The tracer's online analyzer (`charm_core::trace`) approximates the
//! critical path while the run executes, never looking backwards; a
//! recorded log has every actual start/end time, so the chain can be
//! recovered *exactly*. Walking back from the latest-finishing execution,
//! each hop's binding dependency is whichever held the start time:
//!
//! * the previous execution on the same PE, when it ran right up to this
//!   start (the PE was the bottleneck), else
//! * the producer of the consumed message (the network/queue was the
//!   bottleneck; the gap is attributed to message wait).
//!
//! The decomposition telescopes: `Σ dur + Σ wait` along the chain equals
//! the final execution's end time to the nanosecond, which makes this the
//! ground truth the online analyzer is tested against (its estimate may
//! only fall short — it chains through sends it saw, never through
//! PE-queue contention it didn't).

use crate::{ExecRec, ReplayLog};
use std::collections::HashMap;

/// One hop of the exact critical path, latest first.
#[derive(Debug, Clone)]
pub struct CritSeg {
    /// Index into [`ReplayLog::execs`].
    pub exec: usize,
    /// PE the hop ran on.
    pub pe: u32,
    /// Entry-method name (resolved through [`ReplayLog::entry_names`]).
    pub entry: String,
    /// Execution time of the hop (ns).
    pub dur_ns: u64,
    /// Wait attributed to the consumed message before the hop (ns); zero
    /// when the previous execution on the PE was the binding dependency.
    pub wait_ns: u64,
}

/// The exact critical path of a recorded run.
#[derive(Debug, Clone)]
pub struct CritPath {
    /// End time of the latest-finishing execution (ns). Equals
    /// `Σ dur_ns + Σ wait_ns` over [`segments`](Self::segments) exactly.
    pub len_ns: u64,
    /// Total attributed message wait (ns).
    pub wait_ns: u64,
    /// The chain, latest hop first.
    pub segments: Vec<CritSeg>,
    /// `(entry name, total ns on the path)`, descending.
    pub by_entry: Vec<(String, u64)>,
}

/// Extract the exact critical path of `log`. Returns `None` when the log
/// recorded no executions.
pub fn critical_path(log: &ReplayLog) -> Option<CritPath> {
    let execs = &log.execs;
    let last = (0..execs.len()).max_by_key(|&i| end(&execs[i]))?;

    // msg_id -> producing exec.
    let mut producer: HashMap<u64, usize> = HashMap::new();
    for (i, e) in execs.iter().enumerate() {
        for s in &e.sends {
            producer.insert(s.msg_id, i);
        }
    }
    // pe -> execution indices in start order (execs are already recorded in
    // the global execution order, which is start-ordered per PE).
    let mut prev_on_pe: HashMap<u64, usize> = HashMap::new(); // keyed by exec: predecessor
    let mut head: HashMap<u32, usize> = HashMap::new();
    for (i, e) in execs.iter().enumerate() {
        if let Some(&p) = head.get(&e.pe) {
            prev_on_pe.insert(i as u64, p);
        }
        head.insert(e.pe, i);
    }

    let mut segments = Vec::new();
    let mut wait_total = 0u64;
    let mut cur = Some(last);
    while let Some(i) = cur {
        let e = &execs[i];
        // Binding dependency: same-PE predecessor that ran right up to this
        // start beats the message edge (the PE, not the network, held us).
        let pe_pred = prev_on_pe
            .get(&(i as u64))
            .copied()
            .filter(|&p| end(&execs[p]) == e.start_ns);
        let (next, wait) = match pe_pred {
            Some(p) => (Some(p), 0),
            None => match producer.get(&e.msg_id) {
                Some(&p) => (Some(p), e.start_ns - end(&execs[p])),
                // Root message (host send / RTS): the wait back to t=0.
                None => (None, e.start_ns),
            },
        };
        wait_total += wait;
        segments.push(CritSeg {
            exec: i,
            pe: e.pe,
            entry: entry_name(log, e),
            dur_ns: e.dur_ns,
            wait_ns: wait,
        });
        cur = next;
    }

    let mut by: HashMap<String, u64> = HashMap::new();
    for s in &segments {
        *by.entry(s.entry.clone()).or_default() += s.dur_ns;
    }
    let mut by_entry: Vec<_> = by.into_iter().collect();
    by_entry.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));

    Some(CritPath {
        len_ns: end(&execs[last]),
        wait_ns: wait_total,
        segments,
        by_entry,
    })
}

fn end(e: &ExecRec) -> u64 {
    e.start_ns + e.dur_ns
}

fn entry_name(log: &ReplayLog, e: &ExecRec) -> String {
    log.entry_names
        .get(e.entry as usize)
        .cloned()
        .unwrap_or_else(|| format!("entry#{}", e.entry))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exec(seq: u64, pe: u32, start: u64, dur: u64, msg_id: u64, sends: Vec<u64>) -> ExecRec {
        ExecRec {
            seq,
            pe,
            start_ns: start,
            dur_ns: dur,
            msg_id,
            sends: sends
                .into_iter()
                .map(|id| crate::SendRec {
                    msg_id: id,
                    ..Default::default()
                })
                .collect(),
            ..Default::default()
        }
    }

    fn log(execs: Vec<ExecRec>) -> ReplayLog {
        ReplayLog {
            entry_names: vec!["a::m".into()],
            end_ns: execs.iter().map(|e| e.start_ns + e.dur_ns).max().unwrap_or(0),
            execs,
            ..Default::default()
        }
    }

    #[test]
    fn serial_chain_telescopes_to_makespan() {
        // 0 --10ns--> (20..120) sends 1 --30ns--> (150..250) on another PE.
        let l = log(vec![
            exec(0, 0, 20, 100, 0, vec![1]),
            exec(1, 1, 150, 100, 1, vec![]),
        ]);
        let cp = critical_path(&l).unwrap();
        assert_eq!(cp.len_ns, 250);
        assert_eq!(cp.segments.len(), 2);
        // 20 (root wait) + 30 (hop latency) attributed as wait.
        assert_eq!(cp.wait_ns, 50);
        assert_eq!(
            cp.segments.iter().map(|s| s.dur_ns + s.wait_ns).sum::<u64>(),
            cp.len_ns
        );
    }

    #[test]
    fn pe_contention_binds_through_queue_not_message() {
        // PE 0 runs two back-to-back entries; the second's message was sent
        // early (by exec 0's send at its end), so the PE is the bottleneck.
        let l = log(vec![
            exec(0, 0, 0, 100, 0, vec![1, 2]),
            exec(1, 0, 100, 50, 1, vec![]),
            exec(2, 0, 150, 80, 2, vec![]),
        ]);
        let cp = critical_path(&l).unwrap();
        assert_eq!(cp.len_ns, 230);
        // Chain: exec2 <-pe- exec1 <-pe- exec0, no message wait anywhere.
        assert_eq!(cp.segments.len(), 3);
        assert_eq!(cp.wait_ns, 0);
    }
}
