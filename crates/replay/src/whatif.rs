//! What-if machine re-simulation (BigSim-lite, paper §V-B): replay a
//! recorded run's computation/communication DAG on a *different*
//! [`MachineConfig`] and predict makespan + per-PE utilization.

use crate::ReplayLog;
use charm_machine::{simulate_dag, DagEdge, DagNode, MachineConfig, SimTime};
use std::collections::HashMap;

/// Prediction from replaying a log on another machine.
#[derive(Debug, Clone)]
pub struct WhatIfReport {
    /// Preset name of the what-if machine.
    pub machine: String,
    /// PE count of the what-if machine.
    pub num_pes: usize,
    /// Predicted end-to-end time on the what-if machine (seconds).
    pub predicted_makespan_s: f64,
    /// Actual end-to-end time of the recording run (seconds).
    pub recorded_makespan_s: f64,
    /// Predicted mean PE utilization on the what-if machine.
    pub utilization: f64,
    /// Predicted busy seconds per what-if PE.
    pub pe_busy_s: Vec<f64>,
    /// DAG nodes replayed (= entries recorded).
    pub nodes: usize,
}

impl WhatIfReport {
    /// Relative difference of a prediction against a reference makespan
    /// (e.g. an actual run on the what-if machine): `|pred - actual| / actual`.
    pub fn error_vs(&self, actual_makespan_s: f64) -> f64 {
        (self.predicted_makespan_s - actual_makespan_s).abs() / actual_makespan_s.max(1e-12)
    }
}

impl std::fmt::Display for WhatIfReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "what-if on {} ({} PEs): predicted makespan {:.6} s (recorded {:.6} s), predicted utilization {:.1}%",
            self.machine,
            self.num_pes,
            self.predicted_makespan_s,
            self.recorded_makespan_s,
            self.utilization * 100.0
        )
    }
}

/// Levels of a balanced `arity`-way spanning tree over `p` nodes — the same
/// shape the runtime charges for broadcasts and reductions.
fn tree_levels(p: usize, arity: u64) -> u32 {
    let arity = arity.max(2) as usize;
    let mut levels = 0u32;
    let mut reach = 1usize;
    while reach < p {
        reach = reach.saturating_mul(arity);
        levels += 1;
    }
    levels
}

/// Replay `log`'s DAG on `machine`. PEs are mapped proportionally
/// (`pe × P_new / P_old`) so placement structure survives a PE-count change;
/// collective tree depths are re-derived for the what-if PE count.
pub fn whatif(log: &ReplayLog, machine: &MachineConfig) -> WhatIfReport {
    let p_old = (log.num_pes as usize).max(1);
    let p_new = machine.num_pes.max(1);
    let map_pe = |pe: u32| -> usize { ((pe as usize) * p_new / p_old).min(p_new - 1) };

    // msg_id → (producing node, how it was sent).
    let mut producers: HashMap<u64, (Option<usize>, &crate::SendRec)> = HashMap::new();
    for s in &log.roots {
        producers.insert(s.msg_id, (None, s));
    }
    for (i, e) in log.execs.iter().enumerate() {
        for s in &e.sends {
            producers.insert(s.msg_id, (Some(i), s));
        }
    }

    // Collective depths were recorded for the old machine's tree; rescale
    // multiples of the old base depth (QD records 2× depth) to the new one.
    let base_old = tree_levels(p_old, log.collective_arity).max(1);
    let base_new = tree_levels(p_new, log.collective_arity);
    let rescale_depth = |d: u32| -> u32 {
        if d == 0 {
            0
        } else {
            (((d as u64) * (base_new as u64) + (base_old as u64) / 2) / base_old as u64).max(1)
                as u32
        }
    };

    let nodes: Vec<DagNode> = log
        .execs
        .iter()
        .map(|e| DagNode {
            pe: map_pe(e.pe),
            work: e.work,
            n_remote: e.n_remote,
            n_local: e.n_local,
        })
        .collect();

    let edges: Vec<DagEdge> = log
        .execs
        .iter()
        .enumerate()
        .map(|(i, e)| match producers.get(&e.msg_id) {
            Some(&(src, s)) => DagEdge {
                src,
                dst: i,
                bytes: s.bytes as usize,
                tree_depth: rescale_depth(s.tree_depth),
                rtt_bytes: s.rtt_bytes as usize,
                // The runtime prices delays with the message's rec_id;
                // reusing it replays the same seeded jitter stream.
                token: s.msg_id,
            },
            // Defensive: a consumed message we never saw routed becomes an
            // externally injected point-to-point edge of its recorded size.
            None => DagEdge {
                src: None,
                dst: i,
                bytes: e.msg_bytes as usize,
                tree_depth: 0,
                rtt_bytes: 0,
                token: e.msg_id,
            },
        })
        .collect();

    let r = simulate_dag(
        machine,
        SimTime(log.sched_overhead_ns),
        &nodes,
        &edges,
        log.seed,
    );

    WhatIfReport {
        machine: machine.name.clone(),
        num_pes: p_new,
        predicted_makespan_s: r.makespan.as_secs_f64(),
        recorded_makespan_s: SimTime(log.end_ns).as_secs_f64(),
        utilization: r.utilization,
        pe_busy_s: r.pe_busy.iter().map(|b| b.as_secs_f64()).collect(),
        nodes: r.executed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_levels_match_runtime_shape() {
        assert_eq!(tree_levels(1, 2), 0);
        assert_eq!(tree_levels(2, 2), 1);
        assert_eq!(tree_levels(8, 2), 3);
        assert_eq!(tree_levels(9, 2), 4);
        assert_eq!(tree_levels(64, 4), 3);
    }
}
