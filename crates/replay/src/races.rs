//! Message-race detection: diff a baseline recording against a perturbed
//! re-run and minimize a witness.
//!
//! The detector is state-based, not heuristic: a chare is flagged
//! *order-sensitive* iff its final PUP state digest differs between the two
//! runs — i.e. the delivery reordering demonstrably changed its state. The
//! witness is then minimized by walking the chare's consumed-message
//! sequences in both runs to the first position where they disagree: the
//! two messages reported there are a pair whose delivery order swapped
//! (everything later is downstream noise of that swap).

use crate::{PerturbConfig, ReplayLog};
use charm_core::ObjId;
use std::collections::BTreeMap;

/// A chare whose final state depended on delivery order.
#[derive(Debug, Clone)]
pub struct RaceFinding {
    /// The order-sensitive chare.
    pub chare: ObjId,
    /// Its final state digest in the baseline run.
    pub base_digest: u64,
    /// Its final state digest in the perturbed run (`None` = chare missing).
    pub perturbed_digest: Option<u64>,
}

/// One consumed message, as seen by the destination chare.
#[derive(Debug, Clone, PartialEq)]
pub struct MsgDesc {
    /// Entry method it triggered.
    pub entry: String,
    /// PUP digest of the payload.
    pub digest: u64,
    /// Producing chare (`None` = host/RTS origin).
    pub src: Option<ObjId>,
}

impl std::fmt::Display for MsgDesc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.src {
            Some(s) => write!(f, "{} (payload {:#x}) from {:?}", self.entry, self.digest, s),
            None => write!(f, "{} (payload {:#x}) from host/RTS", self.entry, self.digest),
        }
    }
}

/// The minimized two-message witness of an order sensitivity.
#[derive(Debug, Clone)]
pub struct Witness {
    /// The chare whose consumed sequence first diverged.
    pub chare: ObjId,
    /// Position in that chare's consumed-message sequence.
    pub position: usize,
    /// What the baseline run consumed at `position`.
    pub first: MsgDesc,
    /// What the perturbed run consumed there instead.
    pub second: MsgDesc,
}

impl std::fmt::Display for Witness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "chare {:?}, delivery #{}: baseline consumed [{}], perturbed consumed [{}]",
            self.chare, self.position, self.first, self.second
        )
    }
}

/// Outcome of diffing one perturbed run against the baseline.
#[derive(Debug, Clone, Default)]
pub struct RaceReport {
    /// Chares whose final state digests differ, sorted by id.
    pub order_sensitive: Vec<RaceFinding>,
    /// Minimized witness (present whenever any consumed sequence diverged).
    pub witness: Option<Witness>,
}

impl RaceReport {
    /// Did the perturbation change any chare's final state?
    pub fn flagged(&self) -> bool {
        !self.order_sensitive.is_empty()
    }
}

/// Per-destination consumed-message sequences, with the global exec seq of
/// each consumption (for earliest-divergence ranking).
fn consumed_seqs(log: &ReplayLog) -> BTreeMap<ObjId, Vec<(u64, MsgDesc)>> {
    let mut out: BTreeMap<ObjId, Vec<(u64, MsgDesc)>> = BTreeMap::new();
    for e in &log.execs {
        let entry = log
            .entry_names
            .get(e.entry as usize)
            .cloned()
            .unwrap_or_else(|| "?".into());
        out.entry(e.dst).or_default().push((
            e.seq,
            MsgDesc {
                entry,
                digest: e.msg_digest,
                src: e.msg_src,
            },
        ));
    }
    out
}

/// Diff a perturbed run against the baseline recording. Both logs must come
/// from the *same program and seed* (only the perturbation differs), so any
/// final-state difference is attributable to delivery order.
pub fn diff_runs(base: &ReplayLog, perturbed: &ReplayLog) -> RaceReport {
    let base_fin: BTreeMap<ObjId, u64> = base.final_state.digests.iter().copied().collect();
    let pert_fin: BTreeMap<ObjId, u64> = perturbed.final_state.digests.iter().copied().collect();

    let mut order_sensitive = Vec::new();
    for (&chare, &d) in &base_fin {
        match pert_fin.get(&chare) {
            Some(&pd) if pd == d => {}
            other => order_sensitive.push(RaceFinding {
                chare,
                base_digest: d,
                perturbed_digest: other.copied(),
            }),
        }
    }

    // Minimize: earliest (by baseline exec seq) position where some chare's
    // consumed sequence disagrees between the runs.
    let bs = consumed_seqs(base);
    let ps = consumed_seqs(perturbed);
    let mut witness: Option<(u64, Witness)> = None;
    for (chare, bseq) in &bs {
        let empty = Vec::new();
        let pseq = ps.get(chare).unwrap_or(&empty);
        let n = bseq.len().min(pseq.len());
        for i in 0..n {
            let (gseq, a) = &bseq[i];
            let (_, b) = &pseq[i];
            if a != b {
                if witness.as_ref().map(|(g, _)| *gseq < *g).unwrap_or(true) {
                    witness = Some((
                        *gseq,
                        Witness {
                            chare: *chare,
                            position: i,
                            first: a.clone(),
                            second: b.clone(),
                        },
                    ));
                }
                break;
            }
        }
    }

    RaceReport {
        order_sensitive,
        witness: witness.map(|(_, w)| w),
    }
}

/// Outcome of a [`hunt`] campaign.
#[derive(Debug, Clone, Default)]
pub struct HuntOutcome {
    /// Report of the first perturbed run that flagged (empty report = none
    /// of the K runs changed any final state).
    pub report: RaceReport,
    /// Perturbed runs executed.
    pub runs: usize,
    /// Seed of the flagging perturbation, when one flagged.
    pub flagging_seed: Option<u64>,
}

/// Run up to `k` perturbed re-executions (seeds `base_seed..base_seed+k`)
/// and stop at the first one whose final state diverges from `baseline`.
/// `run_perturbed` re-executes the recorded program with the given
/// perturbation and returns its log.
pub fn hunt(
    baseline: &ReplayLog,
    k: u64,
    base_seed: u64,
    mut run_perturbed: impl FnMut(PerturbConfig) -> ReplayLog,
) -> HuntOutcome {
    for i in 0..k {
        let seed = base_seed + i;
        let log = run_perturbed(PerturbConfig::with_seed(seed));
        let report = diff_runs(baseline, &log);
        if report.flagged() {
            return HuntOutcome {
                report,
                runs: (i + 1) as usize,
                flagging_seed: Some(seed),
            };
        }
    }
    HuntOutcome {
        report: RaceReport::default(),
        runs: k as usize,
        flagging_seed: None,
    }
}
