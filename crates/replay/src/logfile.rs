//! Versioned on-disk format for [`ReplayLog`]s.
//!
//! Layout: 8-byte magic `CHMRLOG1` · u32 version · u64 body length ·
//! PUP-packed body · u64 FNV-1a checksum of the body. Everything
//! little-endian (the PUP wire format). The checksum catches truncation
//! and corruption before a malformed stream can panic the unpacker.

use crate::ReplayLog;
use std::io::{Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"CHMRLOG1";
const VERSION: u32 = 1;

/// Why a log failed to load.
#[derive(Debug)]
pub enum LogError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Not a replay log (bad magic).
    BadMagic,
    /// A version this build does not understand.
    BadVersion(u32),
    /// Truncated or corrupted body.
    Corrupt(String),
}

impl std::fmt::Display for LogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LogError::Io(e) => write!(f, "replay log I/O error: {e}"),
            LogError::BadMagic => write!(f, "not a replay log (bad magic)"),
            LogError::BadVersion(v) => write!(f, "unsupported replay log version {v}"),
            LogError::Corrupt(why) => write!(f, "corrupt replay log: {why}"),
        }
    }
}

impl std::error::Error for LogError {}

impl From<std::io::Error> for LogError {
    fn from(e: std::io::Error) -> Self {
        LogError::Io(e)
    }
}

/// Serialize `log` to `path` (atomic: write to `.tmp`, then rename).
pub fn save(log: &ReplayLog, path: &Path) -> std::io::Result<()> {
    let body = charm_pup::to_bytes(&mut log.clone());
    let sum = charm_pup::fnv1a(&body);
    let tmp = path.with_extension("tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(MAGIC)?;
        f.write_all(&VERSION.to_le_bytes())?;
        f.write_all(&(body.len() as u64).to_le_bytes())?;
        f.write_all(&body)?;
        f.write_all(&sum.to_le_bytes())?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

/// Load a log written by [`save`], validating magic, version, and checksum.
pub fn load(path: &Path) -> Result<ReplayLog, LogError> {
    let mut f = std::fs::File::open(path)?;
    let mut data = Vec::new();
    f.read_to_end(&mut data)?;
    if data.len() < 8 + 4 + 8 + 8 {
        return Err(LogError::Corrupt("file shorter than header".into()));
    }
    if &data[..8] != MAGIC {
        return Err(LogError::BadMagic);
    }
    let version = u32::from_le_bytes(data[8..12].try_into().unwrap());
    if version != VERSION {
        return Err(LogError::BadVersion(version));
    }
    let body_len = u64::from_le_bytes(data[12..20].try_into().unwrap()) as usize;
    let expect = 20 + body_len + 8;
    if data.len() != expect {
        return Err(LogError::Corrupt(format!(
            "expected {expect} bytes, found {}",
            data.len()
        )));
    }
    let body = &data[20..20 + body_len];
    let sum = u64::from_le_bytes(data[20 + body_len..].try_into().unwrap());
    if charm_pup::fnv1a(body) != sum {
        return Err(LogError::Corrupt("checksum mismatch".into()));
    }
    charm_pup::from_bytes_exact::<ReplayLog>(body)
        .map_err(|e| LogError::Corrupt(format!("body does not unpack: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ReplayLog {
        ReplayLog {
            app: "sample".into(),
            machine: "homogeneous".into(),
            num_pes: 2,
            seed: 9,
            sched_overhead_ns: 250,
            collective_arity: 2,
            flops_per_sec: 1e9,
            entry_names: vec!["X::on_message".into()],
            end_ns: 123,
            ..Default::default()
        }
    }

    #[test]
    fn roundtrip_and_integrity() {
        let dir = std::env::temp_dir().join("charm_replay_logfile_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("a.rlog");
        save(&sample(), &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(back.app, "sample");
        assert_eq!(back.entry_names, vec!["X::on_message".to_string()]);

        // Flip one body byte: checksum must catch it.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = 20 + (bytes.len() - 28) / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(load(&path), Err(LogError::Corrupt(_))));

        // Truncation is caught too.
        bytes.truncate(bytes.len() - 3);
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(load(&path), Err(LogError::Corrupt(_))));

        std::fs::write(&path, b"NOTALOG!xxxxxxxxxxxxxxxxxxxxxxx").unwrap();
        assert!(matches!(load(&path), Err(LogError::BadMagic)));
    }
}
