//! Digest-for-digest comparison of two replay logs (typically a recording
//! and a same-seed re-run).

use crate::ReplayLog;

/// The first point where two logs disagree.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Execution index (or digest-point seq) of the disagreement.
    pub seq: u64,
    /// What disagreed (e.g. `"exec.msg_digest"`, `"state_point"`).
    pub what: String,
    /// Rendering of the recorded side.
    pub recorded: String,
    /// Rendering of the replayed side.
    pub replayed: String,
}

/// Outcome of [`verify`].
#[derive(Debug, Clone)]
pub struct VerifyReport {
    /// Entries in the recorded log.
    pub execs_recorded: usize,
    /// Entries in the replayed log.
    pub execs_replayed: usize,
    /// Matching periodic state-digest points.
    pub state_points_ok: usize,
    /// Did the final chare-state digests match exactly?
    pub final_state_ok: bool,
    /// First disagreement, if any.
    pub first_divergence: Option<Divergence>,
}

impl VerifyReport {
    /// True when the two logs are digest-for-digest identical.
    pub fn ok(&self) -> bool {
        self.first_divergence.is_none() && self.final_state_ok
    }
}

impl std::fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.ok() {
            write!(
                f,
                "replay verified: {} entries, {} state point(s), final state identical",
                self.execs_recorded, self.state_points_ok
            )
        } else if let Some(d) = &self.first_divergence {
            write!(
                f,
                "replay DIVERGED at seq {} ({}): recorded {} vs replayed {}",
                d.seq, d.what, d.recorded, d.replayed
            )
        } else {
            write!(f, "replay DIVERGED: final state digests differ")
        }
    }
}

fn entry_name(log: &ReplayLog, ix: u32) -> &str {
    log.entry_names
        .get(ix as usize)
        .map(|s| s.as_str())
        .unwrap_or("?")
}

/// Compare `recorded` against `replayed`: the executed-entry stream
/// (chare, entry, PE, consumed digest, virtual start/duration), every
/// periodic state-digest point, and the final state digest. Reports the
/// *first* divergence — everything after it is downstream noise.
pub fn verify(recorded: &ReplayLog, replayed: &ReplayLog) -> VerifyReport {
    let mut report = VerifyReport {
        execs_recorded: recorded.execs.len(),
        execs_replayed: replayed.execs.len(),
        state_points_ok: 0,
        final_state_ok: recorded.final_state.digests == replayed.final_state.digests,
        first_divergence: None,
    };

    for (a, b) in recorded.execs.iter().zip(&replayed.execs) {
        let mismatch = |what: &str, x: String, y: String| Divergence {
            seq: a.seq,
            what: what.to_string(),
            recorded: x,
            replayed: y,
        };
        let d = if a.dst != b.dst {
            Some(mismatch("exec.dst", format!("{:?}", a.dst), format!("{:?}", b.dst)))
        } else if entry_name(recorded, a.entry) != entry_name(replayed, b.entry) {
            Some(mismatch(
                "exec.entry",
                entry_name(recorded, a.entry).into(),
                entry_name(replayed, b.entry).into(),
            ))
        } else if a.pe != b.pe {
            Some(mismatch("exec.pe", a.pe.to_string(), b.pe.to_string()))
        } else if a.msg_digest != b.msg_digest {
            Some(mismatch(
                "exec.msg_digest",
                format!("{:#x}", a.msg_digest),
                format!("{:#x}", b.msg_digest),
            ))
        } else if a.start_ns != b.start_ns || a.dur_ns != b.dur_ns {
            Some(mismatch(
                "exec.timing",
                format!("{}+{}ns", a.start_ns, a.dur_ns),
                format!("{}+{}ns", b.start_ns, b.dur_ns),
            ))
        } else {
            None
        };
        if let Some(d) = d {
            report.first_divergence = Some(d);
            return report;
        }
    }
    if recorded.execs.len() != replayed.execs.len() {
        report.first_divergence = Some(Divergence {
            seq: recorded.execs.len().min(replayed.execs.len()) as u64,
            what: "exec.count".into(),
            recorded: recorded.execs.len().to_string(),
            replayed: replayed.execs.len().to_string(),
        });
        return report;
    }

    for (a, b) in recorded.state_points.iter().zip(&replayed.state_points) {
        if a != b {
            report.first_divergence = Some(Divergence {
                seq: a.seq,
                what: "state_point".into(),
                recorded: format!("{} digests at t={}ns", a.digests.len(), a.t_ns),
                replayed: format!("{} digests at t={}ns", b.digests.len(), b.t_ns),
            });
            return report;
        }
        report.state_points_ok += 1;
    }
    if recorded.state_points.len() != replayed.state_points.len() {
        report.first_divergence = Some(Divergence {
            seq: 0,
            what: "state_point.count".into(),
            recorded: recorded.state_points.len().to_string(),
            replayed: replayed.state_points.len().to_string(),
        });
    }
    report
}
