//! # charm-replay — deterministic record/replay for charm-rs
//!
//! The correctness-tooling and performance-prediction layer of the paper's
//! §V (Projections / BigSim) story, built on the runtime's recording hooks
//! ([`charm_core::replay`]):
//!
//! * **Record** — [`RuntimeBuilder::record`](charm_core::RuntimeBuilder::record)
//!   captures the causal message log (per-message src/dst/entry/seq/payload
//!   digest) plus periodic PUP-based chare-state digests;
//!   [`save`]/[`load`] persist it in a compact, versioned, checksummed file.
//! * **Replay & verify** — re-run the same program with the same seed and
//!   recorder, then [`verify`] the two logs digest-for-digest: every
//!   executed entry, every state-digest point, and the final chare states
//!   must match exactly (the scheduler is deterministic, so they do —
//!   including across injected failures and restarts).
//! * **Perturb & hunt** — re-run with seeded, causally-valid delivery
//!   delays ([`PerturbConfig`]); [`diff_runs`] flags order-sensitive chares
//!   by final-state digest and minimizes a witness: the first position in a
//!   chare's consumed-message sequence where the two runs disagree — i.e.
//!   the two messages whose delivery order swapped. [`hunt`] drives K
//!   perturbed runs until one flags.
//! * **What-if** — [`whatif`] reduces the log to a computation/communication
//!   DAG and replays it on a *different* [`MachineConfig`] via
//!   [`charm_machine::simulate_dag`], predicting makespan and per-PE
//!   utilization without re-running application logic (BigSim-lite).

pub use charm_core::replay::{DigestPoint, ExecRec, PerturbConfig, ReplayConfig, ReplayLog, SendRec};

pub mod demo;
mod critpath;
mod logfile;
mod races;
mod verify;
mod whatif;

pub use critpath::{critical_path, CritPath, CritSeg};
pub use logfile::{load, save, LogError};
pub use races::{diff_runs, hunt, HuntOutcome, MsgDesc, RaceFinding, RaceReport, Witness};
pub use verify::{verify, Divergence, VerifyReport};
pub use whatif::{whatif, WhatIfReport};
