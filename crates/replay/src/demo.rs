//! Deliberately order-sensitive demo chares for race-hunt tests and the
//! `race_hunt` bench driver.
//!
//! [`Racy`] folds a stream of `Add`/`Mul` messages into one integer — a
//! non-commutative reduction, so its final value depends on delivery order.
//! The two same-shape messages whose order flips under perturbation are
//! exactly the minimized witness [`diff_runs`](crate::diff_runs) reports.
//! [`Commute`] is the control: identical traffic shape, adds only, so no
//! perturbation can change its final state.

use crate::{PerturbConfig, ReplayConfig, ReplayLog};
use charm_core::{Chare, Ctx, Ix, Runtime};
use charm_machine::MachineConfig;
use charm_pup::{Pup, Puper};

/// Alternating `Add`/`Mul` pairs injected by the demo drivers.
pub const DEMO_OPS: usize = 16;

/// Operations accepted by [`Racy`] and [`Commute`].
#[derive(Clone)]
pub enum OpMsg {
    /// `value += k`.
    Add(i64),
    /// `value *= k` (the non-commuting half).
    Mul(i64),
}

impl Default for OpMsg {
    fn default() -> Self {
        OpMsg::Add(0)
    }
}

impl Pup for OpMsg {
    fn pup(&mut self, p: &mut Puper) {
        let mut tag: u8 = match self {
            OpMsg::Add(_) => 0,
            OpMsg::Mul(_) => 1,
        };
        p.p(&mut tag);
        let mut k = match self {
            OpMsg::Add(k) | OpMsg::Mul(k) => *k,
        };
        p.p(&mut k);
        if p.is_unpacking() {
            *self = if tag == 0 { OpMsg::Add(k) } else { OpMsg::Mul(k) };
        }
    }
}

/// A chare whose state is a *non-commutative* fold of its message stream:
/// `Add` then `Mul` gives `(v + a) × m`, the swapped order gives
/// `v × m + a`. Any delivery reordering of an adjacent Add/Mul pair changes
/// the final state — the seeded order-sensitivity bug the hunt must catch.
#[derive(Default)]
pub struct Racy {
    /// The folded value.
    pub value: i64,
}

impl Pup for Racy {
    fn pup(&mut self, p: &mut Puper) {
        p.p(&mut self.value);
    }
}

impl Chare for Racy {
    type Msg = OpMsg;
    fn on_message(&mut self, msg: OpMsg, ctx: &mut Ctx<'_>) {
        match msg {
            OpMsg::Add(k) => self.value += k,
            OpMsg::Mul(k) => self.value *= k,
        }
        ctx.work(1e3);
    }
}

/// The commutative control: same message type and traffic shape as
/// [`Racy`], but every operation is an addition — no reordering can change
/// the final state, so a correct hunter must *not* flag it.
#[derive(Default)]
pub struct Commute {
    /// The folded value.
    pub value: i64,
}

impl Pup for Commute {
    fn pup(&mut self, p: &mut Puper) {
        p.p(&mut self.value);
    }
}

impl Chare for Commute {
    type Msg = OpMsg;
    fn on_message(&mut self, msg: OpMsg, ctx: &mut Ctx<'_>) {
        match msg {
            OpMsg::Add(k) | OpMsg::Mul(k) => self.value += k,
        }
        ctx.work(1e3);
    }
}

fn run<C: Chare<Msg = OpMsg>>(
    app: &str,
    init: C,
    ops: impl Iterator<Item = OpMsg>,
    seed: u64,
    perturb: Option<PerturbConfig>,
) -> ReplayLog {
    let mut b = Runtime::builder(MachineConfig::homogeneous(4))
        .seed(seed)
        .record(ReplayConfig::with_digest_every(4));
    if let Some(p) = perturb {
        b = b.perturb(p);
    }
    let mut rt = b.build();
    let proxy = rt.create_array::<C>(app);
    // Element on a remote PE so every op crosses the network (and is
    // therefore perturbable).
    rt.insert(proxy, Ix::I1(0), init, Some(2));
    for op in ops {
        rt.send(proxy, Ix::I1(0), op);
    }
    rt.run();
    let mut log = rt.take_replay_log().expect("recording was enabled");
    log.app = app.into();
    log
}

fn demo_ops() -> impl Iterator<Item = OpMsg> {
    (0..DEMO_OPS).map(|i| if i % 2 == 0 { OpMsg::Add(3) } else { OpMsg::Mul(2) })
}

/// Record a [`Racy`] run (optionally perturbed) and return its log.
pub fn run_racy(seed: u64, perturb: Option<PerturbConfig>) -> ReplayLog {
    run("racy-demo", Racy { value: 1 }, demo_ops(), seed, perturb)
}

/// Record a [`Commute`] run (optionally perturbed) and return its log.
pub fn run_commute(seed: u64, perturb: Option<PerturbConfig>) -> ReplayLog {
    run("commute-demo", Commute { value: 1 }, demo_ops(), seed, perturb)
}
