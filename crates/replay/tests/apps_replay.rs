//! Record→replay acceptance for the mini-apps: a same-seed re-run under the
//! recorder reproduces the recording digest-for-digest — every executed
//! entry, every periodic state-digest point, and the final chare states —
//! including across an injected node failure and restart.

use charm_apps::{leanmd, pdes, stencil};
use charm_core::{ReplayConfig, SimTime};
use charm_machine::presets;
use charm_replay::{load, save, verify, ReplayLog};

fn record_stencil() -> ReplayLog {
    let mut cfg = stencil::StencilConfig::cloud_4k(presets::cloud(8), 2);
    cfg.steps = 6;
    cfg.record = Some(ReplayConfig::with_digest_every(100));
    let (_run, mut rt) = stencil::run_with_runtime(cfg);
    let mut log = rt.take_replay_log().expect("recording was on");
    log.app = "stencil".into();
    log
}

fn record_leanmd(fail: bool) -> (ReplayLog, bool) {
    let mut cfg = leanmd::LeanMdConfig {
        steps: 6,
        ckpt_at: fail.then_some(2),
        record: Some(ReplayConfig::with_digest_every(200)),
        ..Default::default()
    };
    if fail {
        // Probe once to place the failure strictly between the checkpoint
        // and the end of the run.
        let (_p, probe_rt) = leanmd::run_with_runtime(leanmd::LeanMdConfig {
            steps: 6,
            ckpt_at: Some(2),
            ..Default::default()
        });
        let ckpt_t = probe_rt.metric("ckpt_time_s")[0].0;
        let end_t = probe_rt.metric("leanmd_step").last().unwrap().0;
        cfg.fail_at = Some((SimTime::from_secs_f64((ckpt_t + end_t) / 2.0), 5));
    }
    let (_run, mut rt) = leanmd::run_with_runtime(cfg);
    let restarted = !rt.metric("restart_time_s").is_empty();
    let mut log = rt.take_replay_log().expect("recording was on");
    log.app = "leanmd".into();
    (log, restarted)
}

fn record_pdes() -> ReplayLog {
    let cfg = pdes::PdesConfig {
        windows: 8,
        record: Some(ReplayConfig::with_digest_every(500)),
        ..Default::default()
    };
    let (_run, mut rt) = pdes::run_with_runtime(cfg);
    let mut log = rt.take_replay_log().expect("recording was on");
    log.app = "pdes".into();
    log
}

fn assert_replay_exact(a: &ReplayLog, b: &ReplayLog) {
    let rep = verify(a, b);
    assert!(rep.ok(), "{rep}");
    assert!(rep.execs_recorded > 0, "recording captured no executions");
    assert!(
        !a.final_state.digests.is_empty(),
        "final state digest is empty"
    );
}

#[test]
fn stencil_record_replay_is_exact() {
    let a = record_stencil();
    let b = record_stencil();
    assert_replay_exact(&a, &b);
    assert!(a.state_points.len() > 1, "periodic digest points were taken");
}

#[test]
fn leanmd_record_replay_is_exact() {
    let (a, _) = record_leanmd(false);
    let (b, _) = record_leanmd(false);
    assert_replay_exact(&a, &b);
}

#[test]
fn leanmd_record_replay_survives_failure_and_restart() {
    let (a, restarted_a) = record_leanmd(true);
    let (b, restarted_b) = record_leanmd(true);
    assert!(restarted_a && restarted_b, "failure was injected and recovered");
    assert_replay_exact(&a, &b);
    // The restart itself must be in the log (Restarted sys events execute).
    assert!(
        a.entry_names.iter().any(|n| n.contains("Restarted")),
        "log records the restart delivery: {:?}",
        a.entry_names
    );
}

#[test]
fn pdes_record_replay_is_exact() {
    let a = record_pdes();
    let b = record_pdes();
    assert_replay_exact(&a, &b);
}

#[test]
fn log_survives_disk_roundtrip() {
    let a = record_stencil();
    let dir = std::env::temp_dir().join("charm_replay_apps_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("stencil.rlog");
    save(&a, &path).unwrap();
    let back = load(&path).unwrap();
    assert_replay_exact(&a, &back);
    assert_eq!(back.app, "stencil");
}
