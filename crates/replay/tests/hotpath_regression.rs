//! Hot-path regression net: same-seed stencil / LeanMD / PDES runs must
//! reproduce the committed golden replay logs *byte for byte* — every
//! executed entry, every consumed-message digest, every periodic state
//! point, the final chare-state digests, and the virtual end time.
//!
//! The golden logs under `tests/golden/` were recorded **before** the PR 4
//! scheduler optimizations (SipHash maps, no dense-index store, per-event
//! heap pops). The optimized engine replays them exactly, which is the
//! proof that the perf work changed nothing observable.
//!
//! Each app runs twice: once on the overhauled hot path (calendar event
//! queue + arena recycling, the default) and once with
//! `classic_hotpath = true` (binary-heap queue, plain boxing). Both
//! recordings must match the same golden bytes — the A/B knob itself is
//! thereby pinned as observation-free.
//!
//! To re-bless after an *intentional* semantic change (new message, changed
//! cost model, …):
//!
//! ```text
//! CHARM_BLESS_GOLDEN=1 cargo test -p charm-replay --test hotpath_regression
//! ```

use charm_apps::{leanmd, pdes, stencil};
use charm_core::ReplayConfig;
use charm_machine::presets;
use charm_replay::{load, save, verify, ReplayLog};
use std::path::PathBuf;

fn golden_path(app: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{app}.rlog"))
}

fn blessing() -> bool {
    std::env::var("CHARM_BLESS_GOLDEN").is_ok()
}

/// Compare a fresh recording against the committed golden log: first
/// digest-for-digest (good diagnostics on divergence), then byte-for-byte
/// through the on-disk codec (catches anything verify() doesn't model).
fn check_against_golden(app: &str, mut log: ReplayLog) {
    log.app = app.to_string();
    let path = golden_path(app);
    if blessing() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        save(&log, &path).unwrap();
        eprintln!("blessed {}", path.display());
        return;
    }
    let golden = load(&path).unwrap_or_else(|e| {
        panic!(
            "missing/corrupt golden log {} ({e:?}); run with CHARM_BLESS_GOLDEN=1 to create",
            path.display()
        )
    });
    let report = verify(&golden, &log);
    assert!(
        report.ok(),
        "{app}: engine behavior diverged from the pre-optimization recording:\n{report}"
    );
    assert!(report.execs_recorded > 0, "{app}: golden log is empty");
    assert!(
        !log.final_state.digests.is_empty(),
        "{app}: no final state digests"
    );

    let tmp = std::env::temp_dir().join(format!("charm_hotpath_{app}_{}.rlog", std::process::id()));
    save(&log, &tmp).unwrap();
    let fresh_bytes = std::fs::read(&tmp).unwrap();
    let golden_bytes = std::fs::read(&path).unwrap();
    let _ = std::fs::remove_file(&tmp);
    assert_eq!(
        fresh_bytes, golden_bytes,
        "{app}: serialized replay log is not byte-identical to the golden log"
    );
}

#[test]
fn stencil_matches_pre_optimization_golden() {
    for classic in [false, true] {
        let mut cfg = stencil::StencilConfig::cloud_4k(presets::cloud(8), 2);
        cfg.steps = 5;
        cfg.record = Some(ReplayConfig::with_digest_every(64));
        cfg.classic_hotpath = classic;
        let (_run, mut rt) = stencil::run_with_runtime(cfg);
        check_against_golden("stencil", rt.take_replay_log().expect("recording on"));
    }
}

#[test]
fn leanmd_matches_pre_optimization_golden() {
    for classic in [false, true] {
        let cfg = leanmd::LeanMdConfig {
            cells_per_dim: 3,
            atoms_per_cell: 20,
            steps: 3,
            record: Some(ReplayConfig::with_digest_every(128)),
            classic_hotpath: classic,
            ..Default::default()
        };
        let (_run, mut rt) = leanmd::run_with_runtime(cfg);
        check_against_golden("leanmd", rt.take_replay_log().expect("recording on"));
    }
}

#[test]
fn pdes_matches_pre_optimization_golden() {
    for classic in [false, true] {
        let cfg = pdes::PdesConfig {
            machine: charm_core::MachineConfig::homogeneous(8),
            lps_per_pe: 8,
            initial_events_per_lp: 8,
            windows: 4,
            record: Some(ReplayConfig::with_digest_every(256)),
            classic_hotpath: classic,
            ..Default::default()
        };
        let (_run, mut rt) = pdes::run_with_runtime(cfg);
        check_against_golden("pdes", rt.take_replay_log().expect("recording on"));
    }
}
