//! Parallel-engine golden replay: re-record the hot-path workloads with the
//! sharded engine (`--threads 2` and `4`) and demand the resulting `.rlog`
//! is **byte-identical** to the committed goldens, which were recorded by
//! the sequential scheduler. This pins the strongest claim the parallel
//! engine makes: not just same final state, but the same executed entries
//! in the same order with the same timings, digests, and message routing.
//!
//! There is deliberately no blessing path here — if these diverge, the
//! parallel engine is wrong (or `hotpath_regression` needs a re-bless
//! first, after which these must again match with no further action).

use charm_apps::{leanmd, pdes, stencil};
use charm_core::ReplayConfig;
use charm_machine::presets;
use charm_replay::{load, save, verify};
use std::path::PathBuf;

fn golden_path(app: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{app}.rlog"))
}

fn check(app: &str, threads: usize, mut rt: charm_core::Runtime) {
    assert!(
        rt.last_run_parallel(),
        "{app} threads {threads}: engine silently fell back to sequential; \
         this golden comparison would only repeat hotpath_regression"
    );
    let mut log = rt.take_replay_log().expect("recording on");
    log.app = app.to_string();
    let golden = load(&golden_path(app)).expect("golden log exists (hotpath_regression blesses)");
    let report = verify(&golden, &log);
    assert!(
        report.ok(),
        "{app} threads {threads}: parallel recording diverged from sequential golden:\n{report}"
    );

    let tmp = std::env::temp_dir().join(format!(
        "charm_pargold_{app}_{threads}_{}.rlog",
        std::process::id()
    ));
    save(&log, &tmp).unwrap();
    let fresh = std::fs::read(&tmp).unwrap();
    let _ = std::fs::remove_file(&tmp);
    let golden_bytes = std::fs::read(golden_path(app)).unwrap();
    assert_eq!(
        fresh, golden_bytes,
        "{app} threads {threads}: parallel .rlog is not byte-identical to the sequential golden"
    );
}

fn stencil_rt(threads: usize) -> charm_core::Runtime {
    let mut cfg = stencil::StencilConfig::cloud_4k(presets::cloud(8), 2);
    cfg.steps = 5;
    cfg.record = Some(ReplayConfig::with_digest_every(64));
    cfg.threads = threads;
    stencil::run_with_runtime(cfg).1
}

fn leanmd_rt(threads: usize) -> charm_core::Runtime {
    let cfg = leanmd::LeanMdConfig {
        cells_per_dim: 3,
        atoms_per_cell: 20,
        steps: 3,
        record: Some(ReplayConfig::with_digest_every(128)),
        threads,
        ..Default::default()
    };
    leanmd::run_with_runtime(cfg).1
}

fn pdes_rt(threads: usize) -> charm_core::Runtime {
    let cfg = pdes::PdesConfig {
        machine: charm_core::MachineConfig::homogeneous(8),
        lps_per_pe: 8,
        initial_events_per_lp: 8,
        windows: 4,
        record: Some(ReplayConfig::with_digest_every(256)),
        threads,
        ..Default::default()
    };
    pdes::run_with_runtime(cfg).1
}

#[test]
fn stencil_parallel_recording_matches_golden() {
    for threads in [2, 4] {
        check("stencil", threads, stencil_rt(threads));
    }
}

#[test]
fn leanmd_parallel_recording_matches_golden() {
    for threads in [2, 4] {
        check("leanmd", threads, leanmd_rt(threads));
    }
}

#[test]
fn pdes_parallel_recording_matches_golden() {
    for threads in [2, 4] {
        check("pdes", threads, pdes_rt(threads));
    }
}
