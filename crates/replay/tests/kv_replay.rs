//! Record→replay acceptance for the charm-kv service: same seed → the
//! recorded `.rlog` is byte-identical across runs (and so is the trace
//! export), and a capped recording is an exact prefix of the uncapped one
//! with the shed visible in the run summary.

use charm_apps::kv::{self, KvConfig};
use charm_apps::strategy_by_name;
use charm_core::{ReplayConfig, Runtime, SimTime, TraceConfig};
use charm_machine::presets;
use charm_replay::{verify, ReplayLog};

fn service_config() -> KvConfig {
    let mut c = KvConfig::service(presets::cloud(4), 80);
    c.clients = 4;
    c.offered_load = 0.7;
    c.zipf_s = 1.1;
    c.strategy = strategy_by_name("greedy");
    c.lb_period = Some(SimTime::from_millis(10));
    c.seed = 13;
    c
}

fn record(cfg_record: ReplayConfig, trace: bool) -> (ReplayLog, kv::KvRun, Runtime) {
    let mut cfg = service_config();
    cfg.record = Some(cfg_record);
    if trace {
        cfg.trace = Some(TraceConfig::default());
    }
    let (run, mut rt) = kv::run_with_runtime(cfg);
    let mut log = rt.take_replay_log().expect("recording was on");
    log.app = "kv".into();
    (log, run, rt)
}

#[test]
fn kv_recording_is_byte_identical_across_runs() {
    let (mut a, run_a, rt_a) = record(ReplayConfig::with_digest_every(200), true);
    let (mut b, run_b, rt_b) = record(ReplayConfig::with_digest_every(200), true);

    // Semantic equality first (better diagnostics on failure)...
    let rep = verify(&a, &b);
    assert!(rep.ok(), "{rep}");
    assert!(rep.execs_recorded > 0);
    assert!(a.state_points.len() > 1, "periodic digest points were taken");

    // ...then the hard pin: the wire bytes themselves.
    assert_eq!(
        charm_pup::to_bytes(&mut a),
        charm_pup::to_bytes(&mut b),
        "same seed must produce a byte-identical .rlog"
    );
    assert_eq!(run_a.store_digest, run_b.store_digest);
    assert_eq!(run_a.state_digest, run_b.state_digest);

    // The trace stream is deterministic too.
    let ta = rt_a.trace_chrome_json().expect("tracing was on");
    let tb = rt_b.trace_chrome_json().expect("tracing was on");
    assert_eq!(ta.into_bytes(), tb.into_bytes(), "trace bytes must match");
}

#[test]
fn capped_kv_recording_is_a_prefix_with_visible_shed() {
    let (full, _, _) = record(ReplayConfig::with_digest_every(200), false);
    assert!(
        full.execs.len() > 500,
        "need a long enough run to cap ({} execs)",
        full.execs.len()
    );

    let cap = 400u64;
    let mut cfg = service_config();
    cfg.record = Some(ReplayConfig {
        digest_every: Some(200),
        max_execs: Some(cap),
    });
    let (run, mut rt) = kv::run_with_runtime(cfg);
    let summary = rt.summary();
    let capped = rt.take_replay_log().expect("recording was on");

    // The cap bounds the in-memory log and the shed is visible.
    assert_eq!(capped.execs.len() as u64, cap);
    assert_eq!(
        summary.replay_shed_execs,
        full.execs.len() as u64 - cap,
        "every exec past the cap is counted as shed"
    );
    assert!(summary.replay_shed_sends > 0, "root sends past the cap shed too");
    assert_eq!(run.unrecoverable, None);

    // What was kept is byte-for-byte the prefix of the unbounded recording.
    for (i, (c, f)) in capped.execs.iter().zip(full.execs.iter()).enumerate() {
        assert_eq!(
            charm_pup::to_bytes(&mut c.clone()),
            charm_pup::to_bytes(&mut f.clone()),
            "exec {i} diverges between capped and full logs"
        );
    }
}

#[test]
fn uncapped_kv_summary_reports_no_shed() {
    let mut cfg = service_config();
    cfg.requests_per_client = 30;
    cfg.record = Some(ReplayConfig::with_digest_every(500));
    let (_, rt) = kv::run_with_runtime(cfg);
    let summary = rt.summary();
    assert_eq!(summary.replay_shed_execs, 0);
    assert_eq!(summary.replay_shed_sends, 0);
}
