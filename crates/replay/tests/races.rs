//! Race-hunting acceptance: the seeded order-sensitivity bug must be caught
//! with a minimized two-message witness, and the commutative control must
//! not be flagged.

use charm_replay::demo::{run_commute, run_racy};
use charm_replay::{diff_runs, hunt, verify};

#[test]
fn same_seed_rerun_verifies_exactly() {
    let a = run_racy(7, None);
    let b = run_racy(7, None);
    let rep = verify(&a, &b);
    assert!(rep.ok(), "{rep}");
    assert_eq!(rep.execs_recorded, rep.execs_replayed);
    assert!(rep.execs_recorded > 0);
}

#[test]
fn hunt_catches_racy_chare_with_two_message_witness() {
    let baseline = run_racy(7, None);
    let outcome = hunt(&baseline, 16, 100, |p| run_racy(7, Some(p)));
    assert!(
        outcome.report.flagged(),
        "no perturbation flagged in {} runs",
        outcome.runs
    );
    let w = outcome
        .report
        .witness
        .as_ref()
        .expect("flagged report carries a witness");
    // The witness is a genuine order swap: two *different* operations whose
    // delivery order differs between baseline and perturbed run.
    assert_ne!(w.first, w.second, "witness messages must differ");
    assert!(
        w.first.entry.contains("on_message"),
        "witness should name the entry method, got {}",
        w.first.entry
    );
    println!(
        "flagged with seed {:?} after {} runs: {}",
        outcome.flagging_seed, outcome.runs, w
    );
}

#[test]
fn commutative_control_is_not_flagged() {
    let baseline = run_commute(7, None);
    let outcome = hunt(&baseline, 16, 100, |p| run_commute(7, Some(p)));
    assert!(
        !outcome.report.flagged(),
        "commutative chare must not be order-sensitive: {:?}",
        outcome.report.order_sensitive
    );
    assert_eq!(outcome.runs, 16);
}

#[test]
fn diff_runs_is_clean_on_identical_logs() {
    let a = run_racy(7, None);
    let b = run_racy(7, None);
    let rep = diff_runs(&a, &b);
    assert!(!rep.flagged());
    assert!(rep.witness.is_none());
}
