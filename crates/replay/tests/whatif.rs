//! What-if acceptance: replaying a LeanMD log recorded on one machine
//! predicts the makespan of an actual run on a *different* machine within
//! 10% (BigSim-lite, paper §V-B).

use charm_apps::leanmd;
use charm_core::ReplayConfig;
use charm_machine::{presets, MachineConfig};
use charm_replay::{whatif, ReplayLog};

fn record_on(machine: MachineConfig) -> ReplayLog {
    let (_run, mut rt) = leanmd::run_with_runtime(leanmd::LeanMdConfig {
        machine,
        steps: 6,
        record: Some(ReplayConfig::default()),
        ..Default::default()
    });
    let mut log = rt.take_replay_log().expect("recording was on");
    log.app = "leanmd".into();
    log
}

#[test]
fn whatif_on_recording_machine_matches_recorded_makespan() {
    let log = record_on(presets::bgq(32));
    let rep = whatif(&log, &presets::bgq(32));
    let err = rep.error_vs(rep.recorded_makespan_s);
    assert!(
        err < 0.10,
        "self-prediction off by {:.1}%: predicted {:.6}s recorded {:.6}s",
        err * 100.0,
        rep.predicted_makespan_s,
        rep.recorded_makespan_s
    );
    assert_eq!(rep.nodes, log.execs.len());
}

#[test]
fn whatif_predicts_cloud_run_from_bgq_recording() {
    let log = record_on(presets::bgq(32));
    let rep = whatif(&log, &presets::cloud(32));

    // Ground truth: actually run the same program on the cloud preset.
    let actual = record_on(presets::cloud(32));
    let actual_s = actual.recorded_makespan_s();
    let err = rep.error_vs(actual_s);
    assert!(
        err < 0.10,
        "cross-machine prediction off by {:.1}%: predicted {:.6}s actual {:.6}s",
        err * 100.0,
        rep.predicted_makespan_s,
        actual_s
    );
    // The two machines genuinely differ: prediction should, too.
    assert!(
        (rep.predicted_makespan_s - rep.recorded_makespan_s).abs()
            > 0.01 * rep.recorded_makespan_s,
        "what-if made no difference between bgq and cloud"
    );
}

trait RecordedMakespan {
    fn recorded_makespan_s(&self) -> f64;
}
impl RecordedMakespan for ReplayLog {
    fn recorded_makespan_s(&self) -> f64 {
        charm_machine::SimTime(self.end_ns).as_secs_f64()
    }
}
