//! Record→replay acceptance for elastic runs: a leanmd job driven by the
//! closed-loop controller through a spot preemption reproduces its recording
//! digest-for-digest, and the same run is byte-identical at any worker
//! thread count (elastic runs fall back to the sequential engine, which is
//! exactly the contract this pins down).

use charm_apps::leanmd::{run_with_runtime, LeanMdConfig};
use charm_core::{ElasticConfig, HysteresisPolicy, ReplayConfig, SimTime};
use charm_replay::{verify, ReplayLog};

/// Probe the failure-free run once for its makespan (seconds).
fn probe_makespan() -> f64 {
    let (run, _rt) = run_with_runtime(LeanMdConfig { steps: 6, ..Default::default() });
    run.total_s
}

fn elastic_cfg(t: f64, threads: usize, record: bool) -> LeanMdConfig {
    let cadence = SimTime::from_secs_f64(t / 4.0);
    LeanMdConfig {
        steps: 6,
        threads,
        elastic: Some(ElasticConfig::new(
            cadence,
            Box::new(HysteresisPolicy::new(0.95, 0.5, 2, cadence, 2, 8)),
        )),
        // One spot preemption with ample warning: the controller's world
        // shrinks under it mid-flight, proactively (no rollback).
        preemptions: vec![(
            SimTime::from_secs_f64(0.5 * t),
            5,
            SimTime::from_secs_f64(0.25 * t),
        )],
        record: record.then(|| ReplayConfig::with_digest_every(200)),
        ..Default::default()
    }
}

fn record_elastic(t: f64) -> ReplayLog {
    let (_run, mut rt) = run_with_runtime(elastic_cfg(t, 1, true));
    assert_eq!(
        rt.metric("evacuations").len(),
        1,
        "the preemption must be survived proactively"
    );
    assert!(rt.metric("restart_time_s").is_empty(), "ample warning: no rollback");
    assert!(!rt.metric("elastic_util").is_empty(), "the controller must have sampled");
    let mut log = rt.take_replay_log().expect("recording was on");
    log.app = "leanmd-elastic".into();
    log
}

#[test]
fn elastic_preemption_record_replay_is_exact() {
    let t = probe_makespan();
    let a = record_elastic(t);
    let b = record_elastic(t);
    let rep = verify(&a, &b);
    assert!(rep.ok(), "{rep}");
    assert!(rep.execs_recorded > 0, "recording captured no executions");
    assert!(!a.final_state.digests.is_empty(), "final state digest is empty");
}

#[test]
fn elastic_run_is_thread_count_invariant() {
    let t = probe_makespan();
    let (run1, mut rt1) = run_with_runtime(elastic_cfg(t, 1, false));
    let (run2, mut rt2) = run_with_runtime(elastic_cfg(t, 2, false));
    assert_eq!(run1.total_s, run2.total_s, "virtual makespan must not depend on threads");
    assert_eq!(
        rt1.state_digest(),
        rt2.state_digest(),
        "final chare state must be byte-identical at 1 and 2 worker threads"
    );
    assert_eq!(rt1.metric("evacuations").len(), rt2.metric("evacuations").len());
}
