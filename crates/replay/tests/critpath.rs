//! Offline (exact, from a recorded log) vs online (streaming, in-tracer)
//! critical-path agreement on a real app:
//!
//! * the offline decomposition telescopes exactly — `Σ dur + Σ wait` over
//!   the chain equals the latest execution's end time to the nanosecond,
//! * the online estimate never exceeds the offline truth, which never
//!   exceeds the recorded makespan.

use charm_apps::stencil;
use charm_core::{ReplayConfig, TraceConfig};
use charm_machine::presets;
use charm_replay::critical_path;

#[test]
fn offline_exact_bounds_online_estimate_and_makespan() {
    let mut cfg = stencil::StencilConfig::cloud_4k(presets::cloud(8), 2);
    cfg.steps = 4;
    cfg.record = Some(ReplayConfig::default());
    cfg.trace = Some(TraceConfig::summary_only().with_critical_path());
    let (_run, mut rt) = stencil::run_with_runtime(cfg);

    let online = rt
        .tracer()
        .expect("tracing was on")
        .critical_path()
        .expect("entries executed");
    let online_ns = (online.len_s * 1e9).round() as u64;

    let log = rt.take_replay_log().expect("recording was on");
    let offline = critical_path(&log).expect("executions recorded");

    // Exact telescoping: the chain accounts for the full path length.
    let accounted: u64 = offline.segments.iter().map(|s| s.dur_ns + s.wait_ns).sum();
    assert_eq!(accounted, offline.len_ns);
    assert_eq!(
        offline.wait_ns,
        offline.segments.iter().map(|s| s.wait_ns).sum::<u64>()
    );
    assert!(offline.segments.len() > 1);
    assert!(!offline.by_entry.is_empty());

    // Online is a lower bound on the exact path, which is bounded by the
    // recorded makespan.
    assert!(
        online_ns <= offline.len_ns,
        "online {online_ns} > offline exact {}",
        offline.len_ns
    );
    assert!(
        offline.len_ns <= log.end_ns,
        "offline {} > makespan {}",
        offline.len_ns,
        log.end_ns
    );
    // Both must be substantial fractions of the run, not degenerate zeros.
    assert!(online_ns > 0);
    assert!(offline.len_ns * 10 >= log.end_ns * 5, "path under half the makespan");
}
