//! # charm-ampi — Adaptive MPI: virtualized, migratable MPI ranks (§II-D)
//!
//! AMPI runs each MPI rank as a lightweight migratable entity instead of an
//! OS process, so one core can host many *virtual* ranks. That buys the
//! paper's LULESH results (§IV-D): automatic overlap, cache blocking by
//! shrinking the per-rank working set, automatic load balancing by
//! migrating ranks, and freedom from "must be a cubic number of processes"
//! constraints.
//!
//! ## The substitution
//!
//! Charm++'s AMPI suspends blocked ranks on user-level threads. Safe Rust
//! has no migratable user-level stacks, so rank programs here are written
//! as *message-driven state machines*: the runtime calls
//! [`RankProgram::step`] whenever something the rank may be waiting for
//! arrives (a point-to-point message, a collective result, a resume after
//! migration). `step` consumes whatever is available via the [`Mpi`] facade
//! and returns; the control-flow effect — a rank that makes progress exactly
//! when its communication allows — is the same as AMPI's, and migration,
//! checkpointing, and virtualization semantics are identical.
//!
//! ## Cache model (Fig. 14)
//!
//! The paper's headline AMPI result is a 2.4× LULESH speedup purely from
//! eight-way virtualization shrinking each rank's working set under the
//! node's cache size. [`CacheModel`] reproduces that mechanism: compute
//! charged through [`Mpi::work`] is scaled by a miss penalty when the
//! per-rank working set exceeds its share of node cache.

use charm_core::{
    ArrayId, ArrayProxy, Callback, Chare, Ctx, Ix, RedOp, RedValue, Runtime, SysEvent,
};
use charm_pup::{Pup, Puper};
use std::collections::{BTreeMap, VecDeque};

/// A rank's user program, written as a resumable state machine.
pub trait RankProgram: Pup + Default + Send + 'static {
    /// Make as much progress as currently possible. Called after rank
    /// start-up and after every arrival of something the rank may be
    /// waiting on. Must be idempotent with respect to unavailable data
    /// (i.e. poll with [`Mpi::try_recv`] / [`Mpi::try_collective`] and
    /// return when blocked).
    fn step(&mut self, mpi: &mut Mpi<'_, '_>);
}

/// Working-set → compute-speed model for virtualization cache effects.
#[derive(Debug, Clone)]
pub struct CacheModel {
    /// Total last-level cache per node, bytes (Hopper: ~36 MB, §IV-D).
    pub cache_per_node: f64,
    /// Virtual ranks sharing one node.
    pub ranks_per_node: f64,
    /// Each rank's working set, bytes.
    pub working_set_per_rank: f64,
    /// Compute-time multiplier when the working set entirely misses cache.
    pub miss_penalty: f64,
}

impl CacheModel {
    /// Multiplier applied to every `work()` charge: 1.0 when the working
    /// set fits in this rank's cache share, up to `miss_penalty` when it
    /// doesn't at all, linear in the uncovered fraction between.
    pub fn work_factor(&self) -> f64 {
        let share = self.cache_per_node / self.ranks_per_node.max(1.0);
        if self.working_set_per_rank <= share {
            1.0
        } else {
            let uncovered = 1.0 - share / self.working_set_per_rank;
            1.0 + (self.miss_penalty - 1.0) * uncovered
        }
    }
}

/// Messages between ranks.
#[derive(Default)]
pub enum AmpiMsg {
    /// Point-to-point payload.
    Pt2Pt {
        /// Sending rank.
        src: u64,
        /// MPI-style tag.
        tag: i64,
        /// Serialized payload.
        data: Vec<u8>,
    },
    /// Start the program (delivered once per rank at world start).
    #[default]
    Kick,
}

impl Pup for AmpiMsg {
    fn pup(&mut self, p: &mut Puper) {
        let mut t: u8 = match self {
            AmpiMsg::Pt2Pt { .. } => 0,
            AmpiMsg::Kick => 1,
        };
        p.p(&mut t);
        if p.is_unpacking() {
            *self = match t {
                0 => AmpiMsg::Pt2Pt {
                    src: 0,
                    tag: 0,
                    data: Vec::new(),
                },
                1 => AmpiMsg::Kick,
                x => panic!("invalid AmpiMsg tag {x}"),
            };
        }
        if let AmpiMsg::Pt2Pt { src, tag, data } = self {
            p.p(src);
            p.p(tag);
            p.raw(data);
        }
    }
}


type Mailbox = BTreeMap<(u64, i64), VecDeque<Vec<u8>>>;

/// The chare wrapping one virtual rank.
pub struct VRank<P: RankProgram> {
    rank: u64,
    size: u64,
    program: P,
    mailbox: Mailbox,
    collectives: BTreeMap<u32, RedValue>,
    finished: bool,
    work_factor: f64,
    migrate_requested: bool,
}

impl<P: RankProgram> Default for VRank<P> {
    fn default() -> Self {
        VRank {
            rank: 0,
            size: 0,
            program: P::default(),
            mailbox: BTreeMap::new(),
            collectives: BTreeMap::new(),
            finished: false,
            work_factor: 1.0,
            migrate_requested: false,
        }
    }
}

impl<P: RankProgram> Pup for VRank<P> {
    fn pup(&mut self, p: &mut Puper) {
        p.p(&mut self.rank);
        p.p(&mut self.size);
        p.p(&mut self.program);
        // Mailbox: may hold in-flight data across a migration/checkpoint.
        let mut n = self.mailbox.len() as u64;
        p.p(&mut n);
        if p.is_unpacking() {
            self.mailbox.clear();
            for _ in 0..n {
                let mut key = (0u64, 0i64);
                let mut count = 0u64;
                p.p(&mut key.0);
                p.p(&mut key.1);
                p.p(&mut count);
                let mut q = VecDeque::new();
                for _ in 0..count {
                    let mut d = Vec::new();
                    p.raw(&mut d);
                    q.push_back(d);
                }
                self.mailbox.insert(key, q);
            }
        } else {
            let keys: Vec<(u64, i64)> = self.mailbox.keys().copied().collect();
            for key in keys {
                let mut k = key;
                p.p(&mut k.0);
                p.p(&mut k.1);
                let q = self.mailbox.get_mut(&key).expect("listed");
                let mut count = q.len() as u64;
                p.p(&mut count);
                for d in q.iter_mut() {
                    p.raw(d);
                }
            }
        }
        // Completed-but-unconsumed collectives: only scalar kinds persist.
        let mut m = self.collectives.len() as u64;
        p.p(&mut m);
        if p.is_unpacking() {
            self.collectives.clear();
            for _ in 0..m {
                let mut tag = 0u32;
                let mut v = 0.0f64;
                p.p(&mut tag);
                p.p(&mut v);
                self.collectives.insert(tag, RedValue::F64(v));
            }
        } else {
            let tags: Vec<u32> = self.collectives.keys().copied().collect();
            for tag in tags {
                let mut t = tag;
                p.p(&mut t);
                let mut v = match &self.collectives[&tag] {
                    RedValue::F64(v) => *v,
                    RedValue::I64(v) => *v as f64,
                    other => panic!("only scalar collectives survive pup: {other:?}"),
                };
                p.p(&mut v);
            }
        }
        p.p(&mut self.finished);
        p.p(&mut self.work_factor);
        p.p(&mut self.migrate_requested);
    }
}

impl<P: RankProgram> VRank<P> {
    fn drive(&mut self, ctx: &mut Ctx<'_>) {
        if self.finished {
            return;
        }
        let mut mpi = Mpi {
            ctx,
            rank: self.rank,
            size: self.size,
            mailbox: &mut self.mailbox,
            collectives: &mut self.collectives,
            finished: &mut self.finished,
            work_factor: self.work_factor,
            migrate_requested: &mut self.migrate_requested,
        };
        self.program.step(&mut mpi);
        if self.migrate_requested {
            self.migrate_requested = false;
            ctx.at_sync();
        }
    }
}

impl<P: RankProgram> Chare for VRank<P> {
    type Msg = AmpiMsg;

    fn on_message(&mut self, msg: AmpiMsg, ctx: &mut Ctx<'_>) {
        match msg {
            AmpiMsg::Pt2Pt { src, tag, data } => {
                self.mailbox.entry((src, tag)).or_default().push_back(data);
            }
            AmpiMsg::Kick => {}
        }
        self.drive(ctx);
    }

    fn on_event(&mut self, ev: SysEvent, ctx: &mut Ctx<'_>) {
        match ev {
            SysEvent::Reduction { tag, value } => {
                self.collectives.insert(tag, value);
                self.drive(ctx);
            }
            SysEvent::ResumeFromSync | SysEvent::Migrated { .. } | SysEvent::Restarted { .. } => {
                self.drive(ctx);
            }
            _ => {}
        }
    }
}

/// The MPI-like facade a [`RankProgram`] talks to.
pub struct Mpi<'a, 'rt> {
    ctx: &'a mut Ctx<'rt>,
    rank: u64,
    size: u64,
    mailbox: &'a mut Mailbox,
    collectives: &'a mut BTreeMap<u32, RedValue>,
    finished: &'a mut bool,
    work_factor: f64,
    migrate_requested: &'a mut bool,
}

impl<'a, 'rt> Mpi<'a, 'rt> {
    /// This rank's id (MPI_Comm_rank).
    pub fn rank(&self) -> u64 {
        self.rank
    }

    /// World size (MPI_Comm_size).
    pub fn size(&self) -> u64 {
        self.size
    }

    /// Charge compute, scaled by the cache model's work factor.
    pub fn work(&mut self, flops: f64) {
        self.ctx.work(flops * self.work_factor);
    }

    /// Non-blocking send (MPI_Isend with buffered semantics).
    pub fn isend(&mut self, dst: u64, tag: i64, data: Vec<u8>) {
        let arr = self.ctx.my_id().array;
        self.ctx.send(
            ArrayProxy::<VRankErased>::from_id(arr),
            Ix::i1(dst as i64),
            AmpiMsg::Pt2Pt {
                src: self.rank,
                tag,
                data,
            },
        );
    }

    /// Non-blocking receive: takes a matching message if one has arrived
    /// (MPI_Irecv + MPI_Test). `None` means "not yet — return from `step`
    /// and you will be stepped again when something arrives".
    pub fn try_recv(&mut self, src: u64, tag: i64) -> Option<Vec<u8>> {
        let q = self.mailbox.get_mut(&(src, tag))?;
        let d = q.pop_front();
        if q.is_empty() {
            self.mailbox.remove(&(src, tag));
        }
        d
    }

    /// How many messages with `tag` (from anyone) are waiting.
    pub fn pending_with_tag(&self, tag: i64) -> usize {
        self.mailbox
            .iter()
            .filter(|((_, t), q)| *t == tag && !q.is_empty())
            .map(|(_, q)| q.len())
            .sum()
    }

    /// Begin an allreduce over the whole world (MPI_Iallreduce). The result
    /// becomes available to **every** rank via [`Mpi::try_collective`] under
    /// the same tag. Each rank must contribute exactly once per tag.
    pub fn allreduce(&mut self, tag: u32, value: RedValue, op: RedOp) {
        let arr = self.ctx.my_id().array;
        self.ctx.contribute(
            ArrayProxy::<VRankErased>::from_id(arr),
            tag,
            value,
            op,
            Callback::BroadcastTo { array: arr },
        );
    }

    /// Begin a barrier (MPI_Ibarrier): an allreduce of nothing.
    pub fn barrier(&mut self, tag: u32) {
        self.allreduce(tag, RedValue::I64(0), RedOp::Sum);
    }

    /// Take a completed collective's result, if available.
    pub fn try_collective(&mut self, tag: u32) -> Option<RedValue> {
        self.collectives.remove(&tag)
    }

    /// Request migration at this safe point (AMPI_Migrate): the rank joins
    /// the AtSync barrier; the balancer may move it; `step` resumes after.
    pub fn migrate(&mut self) {
        *self.migrate_requested = true;
    }

    /// Mark this rank's program complete (MPI_Finalize). The rank stops
    /// being stepped.
    pub fn finish(&mut self) {
        *self.finished = true;
    }

    /// Non-blocking typed send: serializes `value` through PUP.
    pub fn isend_typed<T: charm_pup::Pup>(&mut self, dst: u64, tag: i64, value: &mut T) {
        self.isend(dst, tag, charm_pup::to_bytes(value));
    }

    /// Typed receive: deserializes a matching message, if one has arrived.
    pub fn try_recv_typed<T: charm_pup::Pup + Default>(
        &mut self,
        src: u64,
        tag: i64,
    ) -> Option<T> {
        self.try_recv(src, tag)
            .map(|bytes| charm_pup::from_bytes(&bytes))
    }

    /// Begin an allgather: every rank's `value` is concatenated (in the
    /// runtime's deterministic combine order) and delivered to all ranks
    /// under `tag`. Retrieve with [`Mpi::try_collective`] as
    /// [`RedValue::Bytes`]; split on the per-rank payload size.
    pub fn allgather_bytes(&mut self, tag: u32, bytes: Vec<u8>) {
        self.allreduce(tag, RedValue::Bytes(bytes), RedOp::Concat);
    }

    /// Record a journal metric (rank 0 typically logs step times).
    pub fn log_metric(&mut self, name: &str, value: f64) {
        self.ctx.log_metric(name, value);
    }

    /// Virtual time now (seconds).
    pub fn now_s(&self) -> f64 {
        self.ctx.now().as_secs_f64()
    }

    /// End the whole job (CkExit; usually from rank 0 when done).
    pub fn exit_all(&mut self) {
        self.ctx.exit();
    }
}

/// Type-erasure helper: `AmpiMsg` is the message type of *every*
/// `VRank<P>`, so cross-rank sends can use any placeholder program type.
/// (The payload type check at delivery only involves `AmpiMsg`.)
#[derive(Default)]
struct DummyRank;
impl Pup for DummyRank {
    fn pup(&mut self, _p: &mut Puper) {}
}
impl RankProgram for DummyRank {
    fn step(&mut self, _mpi: &mut Mpi<'_, '_>) {}
}
type VRankErased = VRank<DummyRank>;

/// A constructed AMPI world.
pub struct AmpiWorld<P: RankProgram> {
    proxy: ArrayProxy<VRank<P>>,
    num_ranks: usize,
}

impl<P: RankProgram> AmpiWorld<P> {
    /// Create `num_ranks` virtual ranks, block-mapped onto the runtime's
    /// PEs (ranks_per_pe = ceil(R/P) — the virtualization ratio), with an
    /// optional cache model. `make` builds each rank's program.
    pub fn create(
        rt: &mut Runtime,
        name: &str,
        num_ranks: usize,
        cache: Option<&CacheModel>,
        mut make: impl FnMut(u64) -> P,
    ) -> AmpiWorld<P> {
        let proxy = rt.create_array::<VRank<P>>(name);
        rt.set_at_sync(proxy, true);
        let pes = rt.num_pes();
        let per_pe = num_ranks.div_ceil(pes);
        let work_factor = cache.map(|c| c.work_factor()).unwrap_or(1.0);
        for r in 0..num_ranks {
            let pe = (r / per_pe).min(pes - 1);
            rt.insert(
                proxy,
                Ix::i1(r as i64),
                VRank {
                    rank: r as u64,
                    size: num_ranks as u64,
                    program: make(r as u64),
                    work_factor,
                    ..VRank::default()
                },
                Some(pe),
            );
        }
        AmpiWorld {
            proxy,
            num_ranks,
        }
    }

    /// Start every rank's program.
    pub fn kick(&self, rt: &mut Runtime) {
        for r in 0..self.num_ranks {
            rt.send(self.proxy, Ix::i1(r as i64), AmpiMsg::Kick);
        }
    }

    /// The underlying chare array.
    pub fn proxy(&self) -> ArrayProxy<VRank<P>> {
        self.proxy
    }

    /// The array id.
    pub fn id(&self) -> ArrayId {
        self.proxy.id()
    }

    /// Number of ranks.
    pub fn num_ranks(&self) -> usize {
        self.num_ranks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_model_factors() {
        let mut m = CacheModel {
            cache_per_node: 36e6,
            ranks_per_node: 1.0,
            working_set_per_rank: 283e6,
            miss_penalty: 2.6,
        };
        // v=1 on Hopper: 283 MB working set vs 36 MB cache → heavy penalty.
        let slow = m.work_factor();
        assert!(slow > 2.0, "v=1 should miss hard: {slow}");
        // v=8: 35 MB per rank but cache is also split 8 ways…
        m.ranks_per_node = 8.0;
        m.working_set_per_rank = 283e6 / 8.0;
        let v8 = m.work_factor();
        // …total working set per node (8 × 35 MB ≈ 283 MB) still exceeds
        // cache, BUT each rank runs its whole iteration portion with a
        // working set that fits while resident — the paper's argument is
        // per-active-rank. Model that by comparing against the full node
        // cache for the *active* rank:
        let active = CacheModel {
            cache_per_node: 36e6,
            ranks_per_node: 1.0, // one rank active on a core at a time
            working_set_per_rank: 283e6 / 8.0,
            miss_penalty: 2.6,
        };
        assert_eq!(active.work_factor(), 1.0, "v=8 working set fits");
        assert!(v8 >= 1.0);
    }

    /// A program where each rank sends its rank to rank+1 and sums what it
    /// receives; finishes after seeing one message (or immediately for
    /// rank 0's send-only role... all ranks both send and receive in a ring).
    #[derive(Default)]
    struct Ring {
        phase: u32,
        got: u64,
    }
    impl Pup for Ring {
        fn pup(&mut self, p: &mut Puper) {
            p.p(&mut self.phase);
            p.p(&mut self.got);
        }
    }
    impl RankProgram for Ring {
        fn step(&mut self, mpi: &mut Mpi<'_, '_>) {
            loop {
                match self.phase {
                    0 => {
                        let dst = (mpi.rank() + 1) % mpi.size();
                        mpi.isend(dst, 7, mpi.rank().to_le_bytes().to_vec());
                        self.phase = 1;
                    }
                    1 => {
                        let src = (mpi.rank() + mpi.size() - 1) % mpi.size();
                        match mpi.try_recv(src, 7) {
                            Some(d) => {
                                self.got = u64::from_le_bytes(d.try_into().expect("8 bytes"));
                                self.phase = 2;
                            }
                            None => return, // blocked
                        }
                    }
                    2 => {
                        mpi.work(1e5);
                        mpi.allreduce(1, RedValue::F64(self.got as f64), RedOp::Sum);
                        self.phase = 3;
                    }
                    3 => match mpi.try_collective(1) {
                        Some(v) => {
                            if mpi.rank() == 0 {
                                mpi.log_metric("ring_sum", v.as_f64());
                            }
                            mpi.finish();
                            if mpi.rank() == 0 {
                                // rank 0 exits the job once its own program
                                // is done AND the allreduce completed, which
                                // implies everyone reached phase 3.
                                mpi.exit_all();
                            }
                            return;
                        }
                        None => return,
                    },
                    _ => return,
                }
            }
        }
    }

    #[test]
    fn ring_program_runs_over_virtual_ranks() {
        for (pes, ranks) in [(4usize, 4usize), (4, 16), (3, 8)] {
            let mut rt = Runtime::homogeneous(pes);
            let world = AmpiWorld::<Ring>::create(&mut rt, "ring", ranks, None, |_| Ring::default());
            world.kick(&mut rt);
            rt.run();
            let sum = rt.metric("ring_sum").last().expect("completed").1;
            let expect = (ranks * (ranks - 1) / 2) as f64;
            assert_eq!(sum, expect, "pes={pes} ranks={ranks}");
        }
    }

    /// Exercises the typed send/recv helpers and allgather.
    #[derive(Default)]
    struct Typed {
        phase: u32,
    }
    impl Pup for Typed {
        fn pup(&mut self, p: &mut Puper) {
            p.p(&mut self.phase);
        }
    }
    impl RankProgram for Typed {
        fn step(&mut self, mpi: &mut Mpi<'_, '_>) {
            loop {
                match self.phase {
                    0 => {
                        let dst = (mpi.rank() + 1) % mpi.size();
                        let mut payload = (mpi.rank() as i64, vec![mpi.rank() as f64; 3]);
                        mpi.isend_typed(dst, 1, &mut payload);
                        self.phase = 1;
                    }
                    1 => {
                        let src = (mpi.rank() + mpi.size() - 1) % mpi.size();
                        match mpi.try_recv_typed::<(i64, Vec<f64>)>(src, 1) {
                            Some((r, v)) => {
                                assert_eq!(r as u64, src);
                                assert_eq!(v, vec![src as f64; 3]);
                                mpi.allgather_bytes(9, vec![mpi.rank() as u8]);
                                self.phase = 2;
                            }
                            None => return,
                        }
                    }
                    2 => match mpi.try_collective(9) {
                        Some(RedValue::Bytes(all)) => {
                            assert_eq!(all.len() as u64, mpi.size());
                            let mut sorted = all.clone();
                            sorted.sort_unstable();
                            let expect: Vec<u8> = (0..mpi.size() as u8).collect();
                            assert_eq!(sorted, expect, "every rank present once");
                            mpi.finish();
                            if mpi.rank() == 0 {
                                mpi.log_metric("typed_ok", 1.0);
                                mpi.exit_all();
                            }
                            return;
                        }
                        Some(other) => panic!("expected bytes, got {other:?}"),
                        None => return,
                    },
                    _ => return,
                }
            }
        }
    }

    #[test]
    fn typed_helpers_and_allgather() {
        let mut rt = Runtime::homogeneous(3);
        let world = AmpiWorld::<Typed>::create(&mut rt, "typed", 6, None, |_| Typed::default());
        world.kick(&mut rt);
        rt.run();
        assert_eq!(rt.metric("typed_ok").len(), 1);
    }

    #[test]
    fn vrank_pup_roundtrips_mailbox() {
        let mut v: VRank<Ring> = VRank {
            rank: 3,
            size: 8,
            ..VRank::default()
        };
        v.mailbox
            .entry((1, 7))
            .or_default()
            .push_back(vec![1, 2, 3]);
        v.collectives.insert(9, RedValue::F64(2.5));
        let r: VRank<Ring> = charm_pup::roundtrip(&mut v);
        assert_eq!(r.rank, 3);
        assert_eq!(r.mailbox[&(1, 7)][0], vec![1, 2, 3]);
        assert_eq!(r.collectives[&9], RedValue::F64(2.5));
    }
}
