//! `Pup` implementations for primitives, tuples, and standard collections.

use crate::{Pup, Puper};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::hash::{BuildHasher, Hash};

macro_rules! pup_le_primitive {
    ($($t:ty),* $(,)?) => {$(
        impl Pup for $t {
            #[inline]
            fn pup(&mut self, p: &mut Puper) {
                let mut bytes = self.to_le_bytes();
                p.bytes(&mut bytes);
                if p.is_unpacking() {
                    *self = <$t>::from_le_bytes(bytes);
                }
            }
        }
    )*};
}

pup_le_primitive!(i8, u8, i16, u16, i32, u32, i64, u64, i128, u128, f32, f64);

// usize/isize are encoded as 8 bytes for cross-width stability of
// checkpoint files.
impl Pup for usize {
    #[inline]
    fn pup(&mut self, p: &mut Puper) {
        let mut v = *self as u64;
        v.pup(p);
        if p.is_unpacking() {
            *self = usize::try_from(v).expect("usize overflow while unpacking");
        }
    }
}

impl Pup for isize {
    #[inline]
    fn pup(&mut self, p: &mut Puper) {
        let mut v = *self as i64;
        v.pup(p);
        if p.is_unpacking() {
            *self = isize::try_from(v).expect("isize overflow while unpacking");
        }
    }
}

impl Pup for bool {
    #[inline]
    fn pup(&mut self, p: &mut Puper) {
        let mut b = *self as u8;
        b.pup(p);
        if p.is_unpacking() {
            *self = b != 0;
        }
    }
}

impl Pup for char {
    #[inline]
    fn pup(&mut self, p: &mut Puper) {
        let mut v = *self as u32;
        v.pup(p);
        if p.is_unpacking() {
            *self = char::from_u32(v).expect("invalid char while unpacking");
        }
    }
}

impl Pup for () {
    #[inline]
    fn pup(&mut self, _p: &mut Puper) {}
}

impl Pup for String {
    fn pup(&mut self, p: &mut Puper) {
        if p.is_unpacking() {
            let mut bytes = Vec::new();
            p.raw(&mut bytes);
            *self = String::from_utf8(bytes).expect("invalid UTF-8 while unpacking String");
        } else {
            // Safety-free path: we only read the bytes on size/pack.
            let mut bytes = std::mem::take(self).into_bytes();
            p.raw(&mut bytes);
            *self = String::from_utf8(bytes).expect("string bytes unchanged");
        }
    }
}

fn pup_len(p: &mut Puper, len: usize) -> usize {
    let mut v = len as u64;
    v.pup(p);
    v as usize
}

impl<T: Pup + Default> Pup for Vec<T> {
    fn pup(&mut self, p: &mut Puper) {
        let len = pup_len(p, self.len());
        if p.is_unpacking() {
            self.clear();
            self.reserve_exact(len);
            for _ in 0..len {
                let mut v = T::default();
                v.pup(p);
                self.push(v);
            }
        } else {
            for v in self.iter_mut() {
                v.pup(p);
            }
        }
    }
}

impl<T: Pup + Default> Pup for VecDeque<T> {
    fn pup(&mut self, p: &mut Puper) {
        let len = pup_len(p, self.len());
        if p.is_unpacking() {
            self.clear();
            self.reserve(len);
            for _ in 0..len {
                let mut v = T::default();
                v.pup(p);
                self.push_back(v);
            }
        } else {
            for v in self.iter_mut() {
                v.pup(p);
            }
        }
    }
}

impl<T: Pup + Default> Pup for Option<T> {
    fn pup(&mut self, p: &mut Puper) {
        let mut tag = self.is_some() as u8;
        tag.pup(p);
        if p.is_unpacking() {
            *self = if tag != 0 {
                let mut v = T::default();
                v.pup(p);
                Some(v)
            } else {
                None
            };
        } else if let Some(v) = self {
            v.pup(p);
        }
    }
}

impl<T: Pup + Default> Pup for Box<T> {
    fn pup(&mut self, p: &mut Puper) {
        (**self).pup(p);
    }
}

impl<T: Pup, const N: usize> Pup for [T; N] {
    fn pup(&mut self, p: &mut Puper) {
        for v in self.iter_mut() {
            v.pup(p);
        }
    }
}

impl<K, V, S> Pup for HashMap<K, V, S>
where
    K: Pup + Default + Eq + Hash + Clone,
    V: Pup + Default,
    S: BuildHasher + Default,
{
    fn pup(&mut self, p: &mut Puper) {
        let len = pup_len(p, self.len());
        if p.is_unpacking() {
            self.clear();
            for _ in 0..len {
                let mut k = K::default();
                let mut v = V::default();
                k.pup(p);
                v.pup(p);
                self.insert(k, v);
            }
        } else {
            // Iteration order is not deterministic across processes, but the
            // sizing and packing passes of one serialization traverse the
            // same un-mutated map, so they agree — and the map is rebuilt
            // key-by-key on unpack.
            for (k, v) in self.iter_mut() {
                let mut k2 = k.clone();
                k2.pup(p);
                v.pup(p);
            }
        }
    }
}

impl<K, V> Pup for BTreeMap<K, V>
where
    K: Pup + Default + Ord + Clone,
    V: Pup + Default,
{
    fn pup(&mut self, p: &mut Puper) {
        let len = pup_len(p, self.len());
        if p.is_unpacking() {
            self.clear();
            for _ in 0..len {
                let mut k = K::default();
                let mut v = V::default();
                k.pup(p);
                v.pup(p);
                self.insert(k, v);
            }
        } else {
            for (k, v) in self.iter_mut() {
                let mut k2 = k.clone();
                k2.pup(p);
                v.pup(p);
            }
        }
    }
}

impl<T, S> Pup for HashSet<T, S>
where
    T: Pup + Default + Eq + Hash + Clone,
    S: BuildHasher + Default,
{
    fn pup(&mut self, p: &mut Puper) {
        let len = pup_len(p, self.len());
        if p.is_unpacking() {
            self.clear();
            for _ in 0..len {
                let mut v = T::default();
                v.pup(p);
                self.insert(v);
            }
        } else {
            for v in self.iter() {
                let mut v2 = v.clone();
                v2.pup(p);
            }
        }
    }
}

impl<T> Pup for BTreeSet<T>
where
    T: Pup + Default + Ord + Clone,
{
    fn pup(&mut self, p: &mut Puper) {
        let len = pup_len(p, self.len());
        if p.is_unpacking() {
            self.clear();
            for _ in 0..len {
                let mut v = T::default();
                v.pup(p);
                self.insert(v);
            }
        } else {
            for v in self.iter() {
                let mut v2 = v.clone();
                v2.pup(p);
            }
        }
    }
}

impl<T, E> Pup for Result<T, E>
where
    T: Pup + Default,
    E: Pup + Default,
{
    fn pup(&mut self, p: &mut Puper) {
        let mut tag = self.is_ok() as u8;
        tag.pup(p);
        if p.is_unpacking() {
            *self = if tag != 0 {
                let mut v = T::default();
                v.pup(p);
                Ok(v)
            } else {
                let mut e = E::default();
                e.pup(p);
                Err(e)
            };
        } else {
            match self {
                Ok(v) => v.pup(p),
                Err(e) => e.pup(p),
            }
        }
    }
}

impl Pup for std::time::Duration {
    fn pup(&mut self, p: &mut Puper) {
        let mut secs = self.as_secs();
        let mut nanos = self.subsec_nanos();
        p.p(&mut secs);
        p.p(&mut nanos);
        if p.is_unpacking() {
            *self = std::time::Duration::new(secs, nanos);
        }
    }
}

macro_rules! pup_tuple {
    ($(($($name:ident : $idx:tt),+)),* $(,)?) => {$(
        impl<$($name: Pup),+> Pup for ($($name,)+) {
            fn pup(&mut self, p: &mut Puper) {
                $(self.$idx.pup(p);)+
            }
        }
    )*};
}

pup_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5),
);

#[cfg(test)]
mod tests {
    use crate::roundtrip;
    use std::collections::{BTreeSet, HashSet};

    #[test]
    fn sets_roundtrip() {
        let mut h: HashSet<u32> = (0..50).collect();
        assert_eq!(roundtrip(&mut h), h);
        let mut b: BTreeSet<String> = ["x".to_string(), "y".to_string()].into();
        assert_eq!(roundtrip(&mut b), b);
    }

    #[test]
    fn i128_and_u128() {
        let mut a: i128 = i128::MIN + 3;
        assert_eq!(roundtrip(&mut a), a);
        let mut b: u128 = u128::MAX - 9;
        assert_eq!(roundtrip(&mut b), b);
    }

    #[test]
    fn empty_collections() {
        let mut v: Vec<u8> = vec![];
        assert_eq!(roundtrip(&mut v), v);
        let mut s = String::new();
        assert_eq!(roundtrip(&mut s), s);
    }

    #[test]
    fn nested_vec_of_vec() {
        let mut v: Vec<Vec<i16>> = vec![vec![1, 2], vec![], vec![3]];
        assert_eq!(roundtrip(&mut v), v);
    }

    #[test]
    fn result_roundtrip() {
        // `Result` has no `Default`, so drive the puper directly.
        let unpack = |bytes: Vec<u8>| -> Result<u32, String> {
            use crate::Pup as _;
            let mut back: Result<u32, String> = Ok(0);
            let mut p = crate::Puper::unpacker(bytes);
            back.pup(&mut p);
            back
        };
        let mut ok: Result<u32, String> = Ok(7);
        assert_eq!(unpack(crate::to_bytes(&mut ok)), Ok(7));
        let mut err: Result<u32, String> = Err("boom".into());
        assert_eq!(unpack(crate::to_bytes(&mut err)), Err("boom".to_string()));
    }

    #[test]
    fn duration_roundtrip() {
        let mut d = std::time::Duration::new(12, 345_678_901);
        assert_eq!(roundtrip(&mut d), d);
    }

    #[test]
    fn float_bit_exactness() {
        let mut v = vec![f64::NAN, f64::INFINITY, -0.0, f64::MIN_POSITIVE];
        let r = roundtrip(&mut v);
        for (a, b) in v.iter().zip(r.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
