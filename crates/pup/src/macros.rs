//! Macros that generate `Pup` implementations, standing in for the code the
//! Charm++ `.ci`-file translator would emit.

/// Implement [`Pup`](crate::Pup) for a struct by listing its fields, e.g.
///
/// ```
/// #[derive(Default)]
/// struct Particle { x: f64, y: f64, z: f64, mass: f64 }
/// charm_pup::impl_pup_struct!(Particle { x, y, z, mass });
/// ```
#[macro_export]
macro_rules! impl_pup_struct {
    ($ty:ty { $($field:ident),* $(,)? }) => {
        impl $crate::Pup for $ty {
            fn pup(&mut self, p: &mut $crate::Puper) {
                $(p.p(&mut self.$field);)*
            }
        }
    };
}

/// Implement [`Pup`](crate::Pup) for a field-less (C-like) enum with a
/// `Default` variant, encoding it as its `u32` discriminant.
///
/// ```
/// #[derive(Default, Clone, Copy, PartialEq, Debug)]
/// enum Phase { #[default] Idle, Compute, Exchange }
/// charm_pup::impl_pup_unit_enum!(Phase { Idle, Compute, Exchange });
/// ```
#[macro_export]
macro_rules! impl_pup_unit_enum {
    ($ty:ident { $($variant:ident),* $(,)? }) => {
        impl $crate::Pup for $ty {
            fn pup(&mut self, p: &mut $crate::Puper) {
                #[allow(unused_assignments)]
                let mut tag: u32 = 0;
                let mut i: u32 = 0;
                $(
                    if matches!(self, $ty::$variant) { tag = i; }
                    i += 1;
                )*
                let _ = i;
                p.p(&mut tag);
                if p.is_unpacking() {
                    let mut j: u32 = 0;
                    $(
                        if tag == j { *self = $ty::$variant; }
                        j += 1;
                    )*
                    let _ = j;
                }
            }
        }
    };
}

/// Pup a sequence of fields through a puper: `pup_all!(p; self.a, self.b)`.
#[macro_export]
macro_rules! pup_all {
    ($p:expr; $($field:expr),* $(,)?) => {
        $($p.p(&mut $field);)*
    };
}

#[cfg(test)]
mod tests {
    use crate::roundtrip;

    #[test]
    fn unit_enum_roundtrip() {
        #[derive(Default, Clone, Copy, PartialEq, Debug)]
        enum Phase {
            #[default]
            Idle,
            Compute,
            Exchange,
        }
        crate::impl_pup_unit_enum!(Phase { Idle, Compute, Exchange });

        for mut ph in [Phase::Idle, Phase::Compute, Phase::Exchange] {
            assert_eq!(roundtrip(&mut ph), ph);
        }
    }

    #[test]
    fn pup_all_macro() {
        #[derive(Default, Debug, PartialEq)]
        struct S {
            a: u8,
            b: String,
        }
        impl crate::Pup for S {
            fn pup(&mut self, p: &mut crate::Puper) {
                crate::pup_all!(p; self.a, self.b);
            }
        }
        let mut s = S {
            a: 1,
            b: "z".into(),
        };
        assert_eq!(roundtrip(&mut s), s);
    }
}
