//! # charm-pup — the PUP (Pack/UnPack) serialization framework
//!
//! A Rust rendition of Charm++'s `PUP::er` framework (paper §II-D, Fig. 3).
//! A single `pup` method describes an object's state once, and is driven in
//! one of three modes:
//!
//! * **Sizing** — computes the number of bytes the packed form occupies,
//! * **Packing** — serializes the object into a byte stream,
//! * **Unpacking** — restores the object from a byte stream.
//!
//! The same traversal serves migration, checkpointing to disk, double
//! in-memory checkpoints, and message transport, exactly as in Charm++.
//!
//! ```
//! use charm_pup::{Pup, Puper};
//!
//! #[derive(Default, Debug, PartialEq)]
//! struct A {
//!     foo: i32,
//!     bar: [f32; 4],
//! }
//!
//! impl Pup for A {
//!     fn pup(&mut self, p: &mut Puper) {
//!         p.p(&mut self.foo);
//!         charm_pup::pup_array(p, &mut self.bar);
//!     }
//! }
//!
//! let mut a = A { foo: 7, bar: [1.0, 2.0, 3.0, 4.0] };
//! let bytes = charm_pup::to_bytes(&mut a);
//! let b: A = charm_pup::from_bytes(&bytes);
//! assert_eq!(a, b);
//! ```

mod impls;
#[macro_use]
mod macros;

/// The mode a [`Puper`] is operating in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PupMode {
    /// Counting bytes; no data is moved.
    Sizing,
    /// Writing object state into the internal buffer.
    Packing,
    /// Reading object state back out of a buffer.
    Unpacking,
    /// Folding object state into a streaming 64-bit digest; no data is
    /// stored. Behaves like packing from a `pup` body's point of view.
    Digesting,
}

/// FNV-1a offset basis / prime for the digesting mode.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

enum Inner {
    Sizing { size: usize },
    Packing { buf: Vec<u8> },
    Unpacking { data: Vec<u8>, pos: usize },
    Digesting { hash: u64 },
}

/// The serialization driver, equivalent to Charm++'s `PUP::er`.
///
/// Construct one of the three modes with [`Puper::sizer`], [`Puper::packer`],
/// or [`Puper::unpacker`], then hand it to [`Pup::pup`] implementations.
pub struct Puper {
    inner: Inner,
}

impl Puper {
    /// A sizing puper: after traversal, [`Puper::size`] reports the packed size.
    pub fn sizer() -> Self {
        Puper {
            inner: Inner::Sizing { size: 0 },
        }
    }

    /// A packing puper. `capacity` pre-reserves the output buffer (pass the
    /// result of a sizing pass to avoid reallocation, or 0 if unknown).
    pub fn packer(capacity: usize) -> Self {
        Puper {
            inner: Inner::Packing {
                buf: Vec::with_capacity(capacity),
            },
        }
    }

    /// An unpacking puper reading from `data`.
    pub fn unpacker(data: Vec<u8>) -> Self {
        Puper {
            inner: Inner::Unpacking { data, pos: 0 },
        }
    }

    /// An unpacking puper reading from a borrowed slice (copies the slice).
    pub fn unpacker_from(data: &[u8]) -> Self {
        Self::unpacker(data.to_vec())
    }

    /// A digesting puper: after traversal, [`Puper::digest`] reports an
    /// FNV-1a hash of exactly the bytes a packing pass would have written,
    /// without allocating a buffer. Used for chare-state and message-payload
    /// digests in record/replay.
    pub fn digester() -> Self {
        Puper {
            inner: Inner::Digesting { hash: FNV_OFFSET },
        }
    }

    /// Which mode this puper is in.
    pub fn mode(&self) -> PupMode {
        match self.inner {
            Inner::Sizing { .. } => PupMode::Sizing,
            Inner::Packing { .. } => PupMode::Packing,
            Inner::Unpacking { .. } => PupMode::Unpacking,
            Inner::Digesting { .. } => PupMode::Digesting,
        }
    }

    /// True when deserializing (Charm++'s `p.isUnpacking()`); lets a `pup`
    /// body allocate or rebuild caches only on the restore path.
    pub fn is_unpacking(&self) -> bool {
        matches!(self.inner, Inner::Unpacking { .. })
    }

    /// True when computing sizes.
    pub fn is_sizing(&self) -> bool {
        matches!(self.inner, Inner::Sizing { .. })
    }

    /// True when serializing.
    pub fn is_packing(&self) -> bool {
        matches!(self.inner, Inner::Packing { .. })
    }

    /// The byte count accumulated so far (sizing mode), written (packing
    /// mode), or consumed (unpacking mode). Digesting mode does not count
    /// bytes and reports 0.
    pub fn size(&self) -> usize {
        match &self.inner {
            Inner::Sizing { size } => *size,
            Inner::Packing { buf } => buf.len(),
            Inner::Unpacking { pos, .. } => *pos,
            Inner::Digesting { .. } => 0,
        }
    }

    /// The digest accumulated so far (digesting mode only).
    ///
    /// # Panics
    /// Panics if the puper is not in digesting mode.
    pub fn digest(&self) -> u64 {
        match &self.inner {
            Inner::Digesting { hash } => *hash,
            _ => panic!("Puper::digest called on a non-digesting puper"),
        }
    }

    /// Number of unread bytes remaining (unpacking mode only; 0 otherwise).
    pub fn remaining(&self) -> usize {
        match &self.inner {
            Inner::Unpacking { data, pos } => data.len() - *pos,
            _ => 0,
        }
    }

    /// Consume the puper, returning the packed bytes (packing mode only).
    ///
    /// # Panics
    /// Panics if the puper is not in packing mode.
    pub fn into_bytes(self) -> Vec<u8> {
        match self.inner {
            Inner::Packing { buf } => buf,
            _ => panic!("Puper::into_bytes called on a non-packing puper"),
        }
    }

    /// The raw-byte primitive every other operation reduces to.
    ///
    /// Sizing adds `bytes.len()`; packing appends; unpacking fills `bytes`
    /// from the stream.
    ///
    /// # Panics
    /// Panics on unpacking underflow (malformed/truncated stream).
    pub fn bytes(&mut self, bytes: &mut [u8]) {
        match &mut self.inner {
            Inner::Sizing { size } => *size += bytes.len(),
            Inner::Packing { buf } => buf.extend_from_slice(bytes),
            Inner::Digesting { hash } => {
                for &b in bytes.iter() {
                    *hash = (*hash ^ b as u64).wrapping_mul(FNV_PRIME);
                }
            }
            Inner::Unpacking { data, pos } => {
                let end = *pos + bytes.len();
                assert!(
                    end <= data.len(),
                    "PUP stream underflow: need {} bytes at offset {}, only {} available",
                    bytes.len(),
                    pos,
                    data.len()
                );
                bytes.copy_from_slice(&data[*pos..end]);
                *pos = end;
            }
        }
    }

    /// Pup a single value — the idiomatic equivalent of Charm++'s `p | foo`.
    #[inline]
    pub fn p<T: Pup + ?Sized>(&mut self, v: &mut T) {
        v.pup(self);
    }

    /// Pup a length-prefixed run of raw bytes (fast path for `Vec<u8>`-like
    /// payloads; avoids element-at-a-time traversal).
    pub fn raw(&mut self, v: &mut Vec<u8>) {
        let mut len = v.len() as u64;
        self.p(&mut len);
        if self.is_unpacking() {
            v.clear();
            v.resize(len as usize, 0);
        }
        self.bytes(v.as_mut_slice());
    }
}

/// Types that can be packed and unpacked by a [`Puper`].
///
/// Implementations must traverse exactly the same fields in the same order
/// in every mode; the helpers in this crate (and the
/// [`impl_pup_struct!`](crate::impl_pup_struct) macro) make that automatic.
pub trait Pup {
    /// Drive this object's state through the puper.
    fn pup(&mut self, p: &mut Puper);
}

/// Pup a fixed-size array in place (Charm++'s `PUParray`).
pub fn pup_array<T: Pup, const N: usize>(p: &mut Puper, arr: &mut [T; N]) {
    for v in arr.iter_mut() {
        v.pup(p);
    }
}

/// Pup every element of a mutable slice (the slice length is *not* encoded;
/// callers must know it, as with `PUParray`).
pub fn pup_slice<T: Pup>(p: &mut Puper, s: &mut [T]) {
    for v in s.iter_mut() {
        v.pup(p);
    }
}

/// Compute the packed size of `v` without serializing it.
pub fn packed_size<T: Pup + ?Sized>(v: &mut T) -> usize {
    let mut p = Puper::sizer();
    v.pup(&mut p);
    p.size()
}

/// Serialize `v` to bytes (sizing pass first so the buffer is exact-fit).
pub fn to_bytes<T: Pup + ?Sized>(v: &mut T) -> Vec<u8> {
    let n = packed_size(v);
    let mut p = Puper::packer(n);
    v.pup(&mut p);
    p.into_bytes()
}

/// Deserialize a `T` from bytes produced by [`to_bytes`].
///
/// # Panics
/// Panics if the stream is truncated or structurally invalid for `T`.
pub fn from_bytes<T: Pup + Default>(bytes: &[u8]) -> T {
    let mut v = T::default();
    let mut p = Puper::unpacker_from(bytes);
    v.pup(&mut p);
    v
}

/// Like [`from_bytes`] but verifies the entire stream was consumed,
/// returning an error message otherwise. Used when restoring checkpoints.
pub fn from_bytes_exact<T: Pup + Default>(bytes: &[u8]) -> Result<T, String> {
    let mut v = T::default();
    let mut p = Puper::unpacker_from(bytes);
    v.pup(&mut p);
    if p.remaining() != 0 {
        return Err(format!(
            "PUP stream has {} trailing bytes after unpacking {}",
            p.remaining(),
            std::any::type_name::<T>()
        ));
    }
    Ok(v)
}

/// Round-trip a value through pack/unpack — a convenient migration
/// simulation used heavily in tests.
pub fn roundtrip<T: Pup + Default>(v: &mut T) -> T {
    let bytes = to_bytes(v);
    from_bytes(&bytes)
}

/// FNV-1a digest of `v`'s packed representation, computed without
/// serializing. Equal packed bytes imply equal digests (same traversal,
/// same fold), so `digest_of(a) == digest_of(b)` whenever
/// `to_bytes(a) == to_bytes(b)`.
pub fn digest_of<T: Pup + ?Sized>(v: &mut T) -> u64 {
    let mut p = Puper::digester();
    v.pup(&mut p);
    p.digest()
}

/// FNV-1a over a raw byte slice — the same fold [`digest_of`] uses, exposed
/// for hashing already-packed buffers (log integrity checksums).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash = (hash ^ b as u64).wrapping_mul(FNV_PRIME);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{BTreeMap, HashMap, VecDeque};

    #[derive(Default, Debug, PartialEq, Clone)]
    struct Nested {
        id: u64,
        name: String,
        weights: Vec<f64>,
        flags: Option<Vec<bool>>,
        table: BTreeMap<u32, String>,
    }

    impl Pup for Nested {
        fn pup(&mut self, p: &mut Puper) {
            p.p(&mut self.id);
            p.p(&mut self.name);
            p.p(&mut self.weights);
            p.p(&mut self.flags);
            p.p(&mut self.table);
        }
    }

    #[test]
    fn sizer_matches_packer() {
        let mut n = Nested {
            id: 42,
            name: "chare".into(),
            weights: vec![1.5, -2.5, 3.25],
            flags: Some(vec![true, false]),
            table: [(1, "a".to_string()), (9, "b".to_string())].into(),
        };
        assert_eq!(packed_size(&mut n), to_bytes(&mut n).len());
    }

    #[test]
    fn roundtrip_nested() {
        let mut n = Nested {
            id: 7,
            name: "x".into(),
            weights: vec![0.0; 17],
            flags: None,
            table: BTreeMap::new(),
        };
        assert_eq!(roundtrip(&mut n), n);
    }

    #[test]
    fn primitives_roundtrip() {
        macro_rules! check {
            ($($v:expr => $t:ty),* $(,)?) => {$(
                let mut x: $t = $v;
                assert_eq!(roundtrip(&mut x), x, "type {}", stringify!($t));
            )*}
        }
        check!(
            -5i8 => i8, 250u8 => u8, -1234i16 => i16, 65000u16 => u16,
            -7i32 => i32, 4_000_000_000u32 => u32,
            i64::MIN => i64, u64::MAX => u64,
            -3isize => isize, 99usize => usize,
            1.25f32 => f32, -2.5e300f64 => f64,
            true => bool, false => bool, 'λ' => char,
            () => (),
        );
    }

    #[test]
    fn tuples_and_arrays() {
        let mut t = (1u8, -2i32, 3.5f64, "four".to_string());
        assert_eq!(roundtrip(&mut t), t);
        let mut a = [9u32; 6];
        assert_eq!(roundtrip(&mut a), a);
    }

    #[test]
    fn collections_roundtrip() {
        let mut v: Vec<String> = vec!["a".into(), "bb".into()];
        assert_eq!(roundtrip(&mut v), v);
        let mut d: VecDeque<i32> = (0..10).collect();
        assert_eq!(roundtrip(&mut d), d);
        let mut h: HashMap<String, u64> = [("k".to_string(), 1u64)].into();
        assert_eq!(roundtrip(&mut h), h);
        let mut b: Box<i64> = Box::new(-12);
        assert_eq!(roundtrip(&mut b), b);
    }

    #[test]
    fn option_variants() {
        let mut s: Option<u32> = Some(5);
        assert_eq!(roundtrip(&mut s), Some(5));
        let mut n: Option<u32> = None;
        assert_eq!(roundtrip(&mut n), None);
    }

    #[test]
    fn raw_bytes_fast_path() {
        let mut v: Vec<u8> = (0..=255).collect();
        let mut p = Puper::packer(0);
        p.raw(&mut v);
        let bytes = p.into_bytes();
        assert_eq!(bytes.len(), 8 + 256);
        let mut out = Vec::new();
        let mut u = Puper::unpacker(bytes);
        u.raw(&mut out);
        assert_eq!(out, v);
    }

    #[test]
    fn from_bytes_exact_detects_trailing_garbage() {
        let mut x = 1u32;
        let mut bytes = to_bytes(&mut x);
        bytes.push(0xFF);
        assert!(from_bytes_exact::<u32>(&bytes).is_err());
        bytes.pop();
        assert_eq!(from_bytes_exact::<u32>(&bytes).unwrap(), 1u32);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn truncated_stream_panics() {
        let mut x = 0u64;
        let bytes = to_bytes(&mut x);
        let _: u64 = from_bytes(&bytes[..4]);
    }

    #[test]
    fn is_unpacking_gates_rebuild() {
        #[derive(Default)]
        struct Cached {
            data: Vec<i32>,
            sum: i64, // derived, rebuilt on unpack
        }
        impl Pup for Cached {
            fn pup(&mut self, p: &mut Puper) {
                p.p(&mut self.data);
                if p.is_unpacking() {
                    self.sum = self.data.iter().map(|&x| x as i64).sum();
                }
            }
        }
        let mut c = Cached {
            data: vec![1, 2, 3],
            sum: 6,
        };
        let r: Cached = roundtrip(&mut c);
        assert_eq!(r.sum, 6);
    }

    #[test]
    fn digest_matches_packed_bytes() {
        let mut n = Nested {
            id: 42,
            name: "chare".into(),
            weights: vec![1.5, -2.5, 3.25],
            flags: Some(vec![true, false]),
            table: [(1, "a".to_string()), (9, "b".to_string())].into(),
        };
        assert_eq!(digest_of(&mut n), fnv1a(&to_bytes(&mut n)));
    }

    #[test]
    fn digest_distinguishes_values() {
        let mut a = 1u64;
        let mut b = 2u64;
        assert_ne!(digest_of(&mut a), digest_of(&mut b));
        assert_eq!(digest_of(&mut a), digest_of(&mut 1u64.clone()));
    }

    #[test]
    fn digester_reports_mode() {
        let p = Puper::digester();
        assert_eq!(p.mode(), PupMode::Digesting);
        assert!(!p.is_packing() && !p.is_unpacking() && !p.is_sizing());
        assert_eq!(p.size(), 0);
    }

    #[test]
    fn macro_generated_impl() {
        #[derive(Default, Debug, PartialEq)]
        struct M {
            a: i32,
            b: Vec<u16>,
        }
        crate::impl_pup_struct!(M { a, b });
        let mut m = M {
            a: -3,
            b: vec![7, 8],
        };
        assert_eq!(roundtrip(&mut m), m);
    }
}
