//! Property-based tests: PUP pack/unpack is a lossless round trip for
//! arbitrary nested data, and sizing always agrees with packing.

use charm_pup::{from_bytes, packed_size, roundtrip, to_bytes, Pup, Puper};
use proptest::collection::{btree_map, vec};
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Default, Debug, PartialEq, Clone)]
struct Record {
    id: u64,
    tag: i32,
    label: String,
    samples: Vec<f64>,
    children: Vec<Record>,
    meta: BTreeMap<u32, String>,
    maybe: Option<(u8, String)>,
}

impl Pup for Record {
    fn pup(&mut self, p: &mut Puper) {
        p.p(&mut self.id);
        p.p(&mut self.tag);
        p.p(&mut self.label);
        p.p(&mut self.samples);
        p.p(&mut self.children);
        p.p(&mut self.meta);
        p.p(&mut self.maybe);
    }
}

fn record_strategy(depth: u32) -> BoxedStrategy<Record> {
    let leaf = (
        any::<u64>(),
        any::<i32>(),
        ".{0,12}",
        vec(any::<f64>(), 0..8),
        btree_map(any::<u32>(), ".{0,6}", 0..4),
        proptest::option::of((any::<u8>(), ".{0,5}")),
    )
        .prop_map(|(id, tag, label, samples, meta, maybe)| Record {
            id,
            tag,
            label,
            samples,
            children: vec![],
            meta,
            maybe,
        });
    if depth == 0 {
        leaf.boxed()
    } else {
        (leaf, vec(record_strategy(depth - 1), 0..3))
            .prop_map(|(mut r, children)| {
                r.children = children;
                r
            })
            .boxed()
    }
}

proptest! {
    #[test]
    fn record_roundtrips(mut r in record_strategy(2)) {
        let orig = r.clone();
        let back = roundtrip(&mut r);
        // NaN-free comparison: the strategy may generate NaN floats, so
        // compare bit patterns via packed bytes instead of PartialEq.
        prop_assert_eq!(to_bytes(&mut r), to_bytes(&mut { back }));
        prop_assert_eq!(to_bytes(&mut r), to_bytes(&mut { orig }));
    }

    #[test]
    fn sizing_equals_packing(mut r in record_strategy(2)) {
        prop_assert_eq!(packed_size(&mut r), to_bytes(&mut r).len());
    }

    #[test]
    fn vec_u64_roundtrip(mut v in vec(any::<u64>(), 0..200)) {
        prop_assert_eq!(roundtrip(&mut v), v);
    }

    #[test]
    fn strings_roundtrip(mut s in ".{0,64}") {
        prop_assert_eq!(roundtrip(&mut s), s);
    }

    #[test]
    fn unpack_never_reads_past_exact_stream(mut v in vec(any::<i32>(), 0..50)) {
        let bytes = to_bytes(&mut v);
        let back: Vec<i32> = from_bytes(&bytes);
        prop_assert_eq!(back, v);
    }

    // The streaming digest mode (record/replay's StateDigest) must agree
    // with hashing the packed byte stream, for the same arbitrary nested
    // data the round-trip properties use.
    #[test]
    fn digest_matches_packed_fnv1a(mut r in record_strategy(2)) {
        let bytes = to_bytes(&mut r);
        prop_assert_eq!(charm_pup::digest_of(&mut r), charm_pup::fnv1a(&bytes));
    }

    // pup → unpup → digest is the exact replay-verification path: a round
    // trip must never change a state digest.
    #[test]
    fn digest_survives_roundtrip(mut r in record_strategy(2)) {
        let d = charm_pup::digest_of(&mut r);
        let mut back = roundtrip(&mut r);
        prop_assert_eq!(charm_pup::digest_of(&mut back), d);
    }
}
