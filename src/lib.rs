//! # charm-rs — migratable-objects parallel programming in Rust
//!
//! A from-scratch reproduction of *"Parallel Programming with Migratable
//! Objects: Charm++ in Practice"* (SC 2014): the chare programming model,
//! an adaptive runtime system with measurement-based load balancing,
//! fault tolerance, power awareness, malleability, introspective tuning,
//! TRAM message aggregation, AMPI-style virtualized MPI ranks — and every
//! mini-app the paper's evaluation uses, with benchmark binaries that
//! regenerate each of its figures.
//!
//! This facade crate re-exports the workspace members:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`pup`] | `charm-pup` | the PUP serialization framework |
//! | [`machine`] | `charm-machine` | deterministic machine simulator (network, thermal, failures) |
//! | [`core`] | `charm-core` | chares, proxies, scheduler, LB framework, FT, malleability, control points |
//! | [`lb`] | `charm-lb` | Greedy/Refine/Hybrid/Distributed/Orb/Comm/Rotate balancers |
//! | [`tram`] | `charm-tram` | Topological Routing and Aggregation Module |
//! | [`ampi`] | `charm-ampi` | virtualized MPI ranks as migratable chares |
//! | [`sort`] | `charm-sort` | HistSort + MPI multiway-merge baseline |
//! | [`apps`] | `charm-apps` | LeanMD, AMR3D, Barnes-Hut, PDES, LULESH, Stencil2D, … |
//! | [`threaded`] | `charm-threaded` | the chare model on real OS threads |
//!
//! Start with `examples/quickstart.rs`, then see DESIGN.md for the system
//! inventory and EXPERIMENTS.md for the paper-vs-measured record.

pub use charm_ampi as ampi;
pub use charm_apps as apps;
pub use charm_core as core;
pub use charm_lb as lb;
pub use charm_machine as machine;
pub use charm_pup as pup;
pub use charm_sort as sort;
pub use charm_threaded as threaded;
pub use charm_tram as tram;

// The most common names, flattened for examples and downstream users.
pub use charm_core::{
    ArrayProxy, Callback, Chare, Ctx, DvfsScheme, Ix, LbTrigger, MachineConfig, RedOp, RedValue,
    RunSummary, Runtime, SimTime, Strategy, SysEvent,
};
pub use charm_pup::{Pup, Puper};
