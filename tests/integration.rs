//! Cross-crate integration tests: the facade crate, interop between host
//! code and multiple runtime libraries, determinism across the full stack,
//! and agreement between the simulated and threaded executors.

use charm_rs::sort::{hist_sort, skewed_keys, verify_sorted};
use charm_rs::{ArrayProxy, Callback, Chare, Ctx, Ix, Pup, Puper, RedOp, RedValue, Runtime, SysEvent};

#[derive(Default)]
struct Acc {
    total: i64,
}
impl Pup for Acc {
    fn pup(&mut self, p: &mut Puper) {
        p.p(&mut self.total);
    }
}
impl Chare for Acc {
    type Msg = i64;
    fn on_message(&mut self, v: i64, ctx: &mut Ctx<'_>) {
        self.total += v;
        ctx.work(1e4);
        let me = ArrayProxy::<Acc>::from_id(ctx.my_id().array);
        ctx.contribute(
            me,
            7,
            RedValue::I64(v),
            RedOp::Sum,
            Callback::ToChare {
                array: ctx.my_id().array,
                ix: Ix::i1(0),
            },
        );
    }
    fn on_event(&mut self, ev: SysEvent, ctx: &mut Ctx<'_>) {
        if let SysEvent::Reduction { value, .. } = ev {
            ctx.log_metric("acc_total", value.as_i64() as f64);
        }
    }
}

/// The facade re-exports compose into a working program.
#[test]
fn facade_end_to_end() {
    let mut rt = Runtime::homogeneous(4);
    let arr = rt.create_array::<Acc>("acc");
    for i in 0..16 {
        rt.insert(arr, Ix::i1(i), Acc::default(), None);
    }
    for i in 0..16 {
        rt.send(arr, Ix::i1(i), i + 1);
    }
    rt.run();
    let total = rt.metric("acc_total").last().expect("reduced").1;
    assert_eq!(total as i64, (1..=16).sum::<i64>());
}

/// Interop (§III-G): one runtime hosts an application *and* serves repeated
/// sorting-library invocations, with the application's arrays untouched.
#[test]
fn interop_sort_inside_an_application_runtime() {
    let mut rt = Runtime::homogeneous(8);
    let arr = rt.create_array::<Acc>("acc");
    for i in 0..8 {
        rt.insert(arr, Ix::i1(i), Acc::default(), None);
    }
    // Application phase.
    for i in 0..8 {
        rt.send(arr, Ix::i1(i), 10);
    }
    rt.run();
    rt.clear_exit();
    let app_total = rt.metric("acc_total").last().expect("phase 1").1;

    // Library phase: two sorts on the same runtime (CharmLibInit pattern).
    for seed in [1u64, 2] {
        let keys = skewed_keys(8, 200, seed);
        let orig = keys.clone();
        let r = hist_sort(&mut rt, keys, 0.05);
        verify_sorted(&orig, &r.buckets).expect("library sort valid");
    }

    // Application continues; its array is intact.
    for i in 0..8 {
        rt.send(arr, Ix::i1(i), 1);
    }
    rt.run();
    let app_total2 = rt.metric("acc_total").last().expect("phase 2").1;
    assert_eq!(app_total as i64, 80);
    assert_eq!(app_total2 as i64, 8);
}

/// Whole-stack determinism: LeanMD + HybridLB + checkpoints replay
/// bit-identically for a fixed seed.
#[test]
fn full_stack_determinism() {
    use charm_rs::apps::leanmd::{run, LeanMdConfig};
    let mk = || LeanMdConfig {
        machine: charm_rs::MachineConfig::homogeneous(8),
        cells_per_dim: 5,
        atoms_per_cell: 40,
        density_peak: 5.0,
        steps: 8,
        lb_every: 3,
        strategy: Some(Box::new(charm_lb::HybridLb::default())),
        ckpt_at: Some(4),
        ..LeanMdConfig::default()
    };
    let a = run(mk());
    let b = run(mk());
    assert_eq!(a.step_times, b.step_times);
    assert_eq!(a.messages, b.messages);
}

/// The simulated and threaded executors agree on program results.
#[test]
fn simulated_and_threaded_agree() {
    // Simulated.
    let mut rt = Runtime::homogeneous(4);
    let arr = rt.create_array::<Acc>("acc");
    for i in 0..12 {
        rt.insert(arr, Ix::i1(i), Acc::default(), None);
    }
    for i in 0..12 {
        rt.send(arr, Ix::i1(i), (i + 1) * (i + 1));
    }
    rt.run();
    let sim = rt.metric("acc_total").last().expect("reduced").1 as i64;

    // Threaded.
    use charm_rs::threaded::{Actor, TCtx, ThreadedRuntime};
    struct A;
    impl Actor for A {
        type Msg = i64;
        fn on_message(&mut self, v: i64, ctx: &mut TCtx<'_>) {
            ctx.contribute(1, v as f64);
        }
    }
    let mut trt = ThreadedRuntime::new(4);
    let ids: Vec<_> = (0..12).map(|_| trt.spawn(A, None)).collect();
    let rx = trt.reduction(1, ids.len());
    for (i, &id) in ids.iter().enumerate() {
        trt.send::<A>(id, ((i + 1) * (i + 1)) as i64);
    }
    let thr = rx
        .recv_timeout(std::time::Duration::from_secs(10))
        .expect("threaded reduction") as i64;

    assert_eq!(sim, thr);
    assert_eq!(sim, (1..=12).map(|i| i * i).sum::<i64>());
}

/// PUP round-trips compose across crate boundaries (facade types).
#[test]
fn pup_across_crates() {
    let mut ix = Ix::i6([1, 2, 3], [4, 5, 6]);
    assert_eq!(charm_rs::pup::roundtrip(&mut ix), ix);
    let mut blob = charm_rs::apps::util::SyntheticBlob::new(5000);
    assert_eq!(charm_rs::pup::roundtrip(&mut blob), blob);
}

/// A machine preset drives an app through the facade without surprises.
#[test]
fn presets_compose_with_apps() {
    use charm_rs::apps::stencil::{run, StencilConfig};
    let mut c = StencilConfig::cloud_4k(charm_rs::machine::presets::cloud(8), 2);
    c.steps = 5;
    let r = run(c);
    assert_eq!(r.step_times.len(), 5);
    assert!(r.avg_utilization > 0.0);
}
